// Package types defines the value model shared by every layer of the engine:
// datums (single values), rows, schemas, and the comparison/hash routines the
// planner, executor and storage engines rely on.
package types

import (
	"fmt"
	"math"
	"strconv"
	"time"
)

// Kind enumerates the SQL types the engine supports.
type Kind uint8

const (
	// KindNull is the type of an untyped NULL literal.
	KindNull Kind = iota
	// KindInt is a 64-bit signed integer (covers int/bigint/smallint).
	KindInt
	// KindFloat is a 64-bit IEEE float (covers numeric/real in this engine).
	KindFloat
	// KindText is a variable-length string.
	KindText
	// KindBool is a boolean.
	KindBool
	// KindDate is a calendar date with day resolution.
	KindDate
)

// String returns the SQL-ish name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindText:
		return "text"
	case KindBool:
		return "bool"
	case KindDate:
		return "date"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Datum is a single SQL value. The zero Datum is NULL.
//
// Datum is a small value type passed by value throughout the engine; it holds
// at most one word of numeric payload plus an optional string.
type Datum struct {
	kind Kind
	i    int64   // int, bool (0/1), date (days since epoch)
	f    float64 // float
	s    string  // text
}

// Null is the NULL datum.
var Null = Datum{kind: KindNull}

// NewInt returns an int datum.
func NewInt(v int64) Datum { return Datum{kind: KindInt, i: v} }

// NewFloat returns a float datum.
func NewFloat(v float64) Datum { return Datum{kind: KindFloat, f: v} }

// NewText returns a text datum.
func NewText(v string) Datum { return Datum{kind: KindText, s: v} }

// NewBool returns a bool datum.
func NewBool(v bool) Datum {
	if v {
		return Datum{kind: KindBool, i: 1}
	}
	return Datum{kind: KindBool}
}

// NewDate returns a date datum from days since the Unix epoch.
func NewDate(days int64) Datum { return Datum{kind: KindDate, i: days} }

// DateFromTime converts a time.Time to a date datum (UTC day).
func DateFromTime(t time.Time) Datum {
	return NewDate(t.UTC().Unix() / 86400)
}

// Kind reports the datum's type.
func (d Datum) Kind() Kind { return d.kind }

// IsNull reports whether the datum is NULL.
func (d Datum) IsNull() bool { return d.kind == KindNull }

// Int returns the integer payload. It is valid for int and date datums.
func (d Datum) Int() int64 { return d.i }

// Float returns the float payload, converting ints transparently.
func (d Datum) Float() float64 {
	if d.kind == KindInt {
		return float64(d.i)
	}
	return d.f
}

// Text returns the string payload.
func (d Datum) Text() string { return d.s }

// Bool returns the boolean payload.
func (d Datum) Bool() bool { return d.i != 0 }

// String renders the datum the way a SQL client would print it.
func (d Datum) String() string {
	switch d.kind {
	case KindNull:
		return "NULL"
	case KindInt:
		return strconv.FormatInt(d.i, 10)
	case KindFloat:
		return strconv.FormatFloat(d.f, 'g', -1, 64)
	case KindText:
		return d.s
	case KindBool:
		if d.i != 0 {
			return "true"
		}
		return "false"
	case KindDate:
		return time.Unix(d.i*86400, 0).UTC().Format("2006-01-02")
	default:
		return "?"
	}
}

// Size returns the approximate in-memory footprint in bytes; the executor's
// memory accounting (Vmemtracker) charges this per materialized datum.
func (d Datum) Size() int64 {
	return int64(24 + len(d.s))
}

// numericRank orders kinds for cross-type numeric comparison.
func numericRank(k Kind) int {
	switch k {
	case KindInt, KindDate, KindBool:
		return 1
	case KindFloat:
		return 2
	default:
		return 0
	}
}

// Compare orders two datums: -1, 0, +1. NULL sorts before everything
// (matching NULLS FIRST in ascending order). Numeric kinds compare by value
// across int/float; other cross-kind comparisons order by kind.
func Compare(a, b Datum) int {
	if a.kind == KindNull || b.kind == KindNull {
		switch {
		case a.kind == b.kind:
			return 0
		case a.kind == KindNull:
			return -1
		default:
			return 1
		}
	}
	if numericRank(a.kind) > 0 && numericRank(b.kind) > 0 {
		if a.kind == KindFloat || b.kind == KindFloat {
			af, bf := a.Float(), b.Float()
			switch {
			case af < bf:
				return -1
			case af > bf:
				return 1
			default:
				return 0
			}
		}
		switch {
		case a.i < b.i:
			return -1
		case a.i > b.i:
			return 1
		default:
			return 0
		}
	}
	if a.kind != b.kind {
		if a.kind < b.kind {
			return -1
		}
		return 1
	}
	switch a.kind {
	case KindText:
		switch {
		case a.s < b.s:
			return -1
		case a.s > b.s:
			return 1
		default:
			return 0
		}
	default:
		return 0
	}
}

// Equal reports datum equality under Compare semantics (NULL == NULL here;
// SQL ternary NULL handling is the expression evaluator's job).
func Equal(a, b Datum) bool { return Compare(a, b) == 0 }

// Hash returns a stable 64-bit hash of the datum; equal datums (including
// int/float numeric equality) hash identically. It is the basis of hash
// distribution and hash joins.
func (d Datum) Hash() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(b byte) { h = (h ^ uint64(b)) * prime64 }
	switch d.kind {
	case KindNull:
		mix(0)
	case KindInt, KindBool, KindDate:
		// Hash integral values through their float encoding when they fit
		// exactly, so that NewInt(2).Hash() == NewFloat(2).Hash().
		f := float64(d.i)
		if int64(f) == d.i {
			u := math.Float64bits(f)
			for s := 0; s < 64; s += 8 {
				mix(byte(u >> s))
			}
		} else {
			u := uint64(d.i)
			mix(1)
			for s := 0; s < 64; s += 8 {
				mix(byte(u >> s))
			}
		}
	case KindFloat:
		u := math.Float64bits(d.f)
		for s := 0; s < 64; s += 8 {
			mix(byte(u >> s))
		}
	case KindText:
		mix(2)
		for i := 0; i < len(d.s); i++ {
			mix(d.s[i])
		}
	}
	return h
}

// CastTo coerces the datum to the requested kind, mirroring implicit SQL
// casts. It returns an error for impossible conversions.
func (d Datum) CastTo(k Kind) (Datum, error) {
	if d.kind == k || d.kind == KindNull {
		return d, nil
	}
	switch k {
	case KindInt:
		switch d.kind {
		case KindFloat:
			return NewInt(int64(d.f)), nil
		case KindText:
			v, err := strconv.ParseInt(d.s, 10, 64)
			if err != nil {
				return Null, fmt.Errorf("types: cannot cast %q to int", d.s)
			}
			return NewInt(v), nil
		case KindBool, KindDate:
			return NewInt(d.i), nil
		}
	case KindFloat:
		switch d.kind {
		case KindInt, KindDate:
			return NewFloat(float64(d.i)), nil
		case KindText:
			v, err := strconv.ParseFloat(d.s, 64)
			if err != nil {
				return Null, fmt.Errorf("types: cannot cast %q to float", d.s)
			}
			return NewFloat(v), nil
		}
	case KindText:
		return NewText(d.String()), nil
	case KindBool:
		switch d.kind {
		case KindInt:
			return NewBool(d.i != 0), nil
		case KindText:
			v, err := strconv.ParseBool(d.s)
			if err != nil {
				return Null, fmt.Errorf("types: cannot cast %q to bool", d.s)
			}
			return NewBool(v), nil
		}
	case KindDate:
		switch d.kind {
		case KindInt:
			return NewDate(d.i), nil
		case KindText:
			t, err := time.Parse("2006-01-02", d.s)
			if err != nil {
				return Null, fmt.Errorf("types: cannot cast %q to date", d.s)
			}
			return DateFromTime(t), nil
		}
	}
	return Null, fmt.Errorf("types: cannot cast %s to %s", d.kind, k)
}
