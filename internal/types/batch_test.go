package types

import "testing"

func TestRowBatchReuseKeepsCapacity(t *testing.T) {
	b := NewRowBatch(8)
	if b.Cap() != 8 || b.Len() != 0 {
		t.Fatalf("fresh batch: cap=%d len=%d", b.Cap(), b.Len())
	}
	for i := 0; i < 8; i++ {
		b.Append(Row{NewInt(int64(i))})
	}
	if b.Len() != 8 {
		t.Fatalf("len after fill: %d", b.Len())
	}
	b.Reset()
	if b.Len() != 0 {
		t.Fatalf("len after reset: %d", b.Len())
	}
	if b.Cap() != 8 {
		t.Fatalf("reset lost capacity: %d", b.Cap())
	}
	// Refill must not allocate a new backing array.
	first := &b.Rows[:1][0]
	b.Append(Row{NewInt(99)})
	if &b.Rows[0] != first {
		t.Fatal("reset+append reallocated the backing array")
	}
}

func TestRowBatchCloneRowsIsIndependent(t *testing.T) {
	b := NewRowBatch(4)
	b.Append(Row{NewInt(1)})
	b.Append(Row{NewInt(2)})
	c := b.CloneRows()
	b.Reset()
	b.Append(Row{NewInt(77)})
	if c.Len() != 2 || c.Rows[0][0].Int() != 1 || c.Rows[1][0].Int() != 2 {
		t.Fatalf("clone corrupted by producer reuse: %v", c.Rows)
	}
}

func TestRowBatchSizeAndDeepClone(t *testing.T) {
	b := NewRowBatch(2)
	b.Append(Row{NewInt(1), NewText("abc")})
	if b.Size() != b.Rows[0].Size() {
		t.Fatalf("size mismatch: %d vs %d", b.Size(), b.Rows[0].Size())
	}
	d := b.DeepClone()
	if d.Len() != 1 || !d.Rows[0].Equal(b.Rows[0]) {
		t.Fatalf("deep clone rows: %v", d.Rows)
	}
}

func TestNewRowBatchDefaultsCapacity(t *testing.T) {
	b := NewRowBatch(0)
	if b.Cap() != DefaultBatchSize {
		t.Fatalf("zero capacity should default to %d, got %d", DefaultBatchSize, b.Cap())
	}
}

func TestRowBatchSelectionVector(t *testing.T) {
	b := NewRowBatch(4)
	for i := 0; i < 4; i++ {
		b.Append(Row{NewInt(int64(i))})
	}
	b.Sel = []int{1, 3}
	if b.Len() != 2 {
		t.Fatalf("len under selection: %d", b.Len())
	}
	if b.Live(0)[0].Int() != 1 || b.Live(1)[0].Int() != 3 {
		t.Fatalf("live rows: %v %v", b.Live(0), b.Live(1))
	}
	want := b.Live(0).Size() + b.Live(1).Size()
	if b.Size() != want {
		t.Fatalf("size counts dead rows: %d vs %d", b.Size(), want)
	}

	// Clones densify: only live rows, no selection vector.
	c := b.CloneRows()
	if c.Sel != nil || c.Len() != 2 || c.Rows[0][0].Int() != 1 || c.Rows[1][0].Int() != 3 {
		t.Fatalf("clone of selected batch: sel=%v rows=%v", c.Sel, c.Rows)
	}
	d := b.DeepClone()
	if d.Sel != nil || d.Len() != 2 || d.Rows[1][0].Int() != 3 {
		t.Fatalf("deep clone of selected batch: sel=%v rows=%v", d.Sel, d.Rows)
	}

	// Densify compacts in place.
	b.Densify()
	if b.Sel != nil || len(b.Rows) != 2 || b.Rows[0][0].Int() != 1 || b.Rows[1][0].Int() != 3 {
		t.Fatalf("densify: sel=%v rows=%v", b.Sel, b.Rows)
	}

	// Reset clears a selection.
	b.Sel = []int{0}
	b.Reset()
	if b.Sel != nil || b.Len() != 0 {
		t.Fatalf("reset kept selection: %v", b.Sel)
	}
}

func TestRowBatchEmptySelection(t *testing.T) {
	b := NewRowBatch(2)
	b.Append(Row{NewInt(1)})
	b.Sel = []int{}
	if b.Len() != 0 || b.Size() != 0 {
		t.Fatalf("empty selection: len=%d size=%d", b.Len(), b.Size())
	}
	if c := b.CloneRows(); c.Len() != 0 {
		t.Fatalf("clone of empty selection: %v", c.Rows)
	}
}
