package types

import "testing"

func TestRowBatchReuseKeepsCapacity(t *testing.T) {
	b := NewRowBatch(8)
	if b.Cap() != 8 || b.Len() != 0 {
		t.Fatalf("fresh batch: cap=%d len=%d", b.Cap(), b.Len())
	}
	for i := 0; i < 8; i++ {
		b.Append(Row{NewInt(int64(i))})
	}
	if b.Len() != 8 {
		t.Fatalf("len after fill: %d", b.Len())
	}
	b.Reset()
	if b.Len() != 0 {
		t.Fatalf("len after reset: %d", b.Len())
	}
	if b.Cap() != 8 {
		t.Fatalf("reset lost capacity: %d", b.Cap())
	}
	// Refill must not allocate a new backing array.
	first := &b.Rows[:1][0]
	b.Append(Row{NewInt(99)})
	if &b.Rows[0] != first {
		t.Fatal("reset+append reallocated the backing array")
	}
}

func TestRowBatchCloneRowsIsIndependent(t *testing.T) {
	b := NewRowBatch(4)
	b.Append(Row{NewInt(1)})
	b.Append(Row{NewInt(2)})
	c := b.CloneRows()
	b.Reset()
	b.Append(Row{NewInt(77)})
	if c.Len() != 2 || c.Rows[0][0].Int() != 1 || c.Rows[1][0].Int() != 2 {
		t.Fatalf("clone corrupted by producer reuse: %v", c.Rows)
	}
}

func TestRowBatchSizeAndDeepClone(t *testing.T) {
	b := NewRowBatch(2)
	b.Append(Row{NewInt(1), NewText("abc")})
	if b.Size() != b.Rows[0].Size() {
		t.Fatalf("size mismatch: %d vs %d", b.Size(), b.Rows[0].Size())
	}
	d := b.DeepClone()
	if d.Len() != 1 || !d.Rows[0].Equal(b.Rows[0]) {
		t.Fatalf("deep clone rows: %v", d.Rows)
	}
}

func TestNewRowBatchDefaultsCapacity(t *testing.T) {
	b := NewRowBatch(0)
	if b.Cap() != DefaultBatchSize {
		t.Fatalf("zero capacity should default to %d, got %d", DefaultBatchSize, b.Cap())
	}
}
