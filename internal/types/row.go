package types

import "strings"

// Row is a tuple of datums. Rows are value slices; callers that retain a row
// across iterator advances must Clone it.
type Row []Datum

// Clone returns a deep-enough copy of the row (datums are immutable values).
func (r Row) Clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}

// Size returns the accounted in-memory footprint of the row in bytes.
func (r Row) Size() int64 {
	var n int64 = 24
	for _, d := range r {
		n += d.Size()
	}
	return n
}

// Hash combines the hashes of the datums at the given column offsets; it is
// used for hash distribution and join buckets.
func (r Row) Hash(cols []int) uint64 {
	var h uint64 = 1469598103934665603
	for _, c := range cols {
		h = h*1099511628211 ^ r[c].Hash()
	}
	return h
}

// Equal reports column-wise equality under Compare semantics.
func (r Row) Equal(other Row) bool {
	if len(r) != len(other) {
		return false
	}
	for i := range r {
		if Compare(r[i], other[i]) != 0 {
			return false
		}
	}
	return true
}

// String renders the row as a parenthesized tuple, for diagnostics and tests.
func (r Row) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, d := range r {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(d.String())
	}
	b.WriteByte(')')
	return b.String()
}

// Column describes one column of a schema.
type Column struct {
	Name string
	Kind Kind
}

// Schema is an ordered list of named, typed columns.
type Schema struct {
	Columns []Column
}

// NewSchema builds a schema from columns.
func NewSchema(cols ...Column) *Schema { return &Schema{Columns: cols} }

// Len returns the number of columns.
func (s *Schema) Len() int { return len(s.Columns) }

// ColumnIndex returns the offset of the named column, or -1.
func (s *Schema) ColumnIndex(name string) int {
	for i, c := range s.Columns {
		if strings.EqualFold(c.Name, name) {
			return i
		}
	}
	return -1
}

// Project returns a new schema containing the columns at the given offsets.
func (s *Schema) Project(cols []int) *Schema {
	out := &Schema{Columns: make([]Column, len(cols))}
	for i, c := range cols {
		out.Columns[i] = s.Columns[c]
	}
	return out
}

// Concat returns the schema of a join output: s followed by other.
func (s *Schema) Concat(other *Schema) *Schema {
	out := &Schema{Columns: make([]Column, 0, len(s.Columns)+len(other.Columns))}
	out.Columns = append(out.Columns, s.Columns...)
	out.Columns = append(out.Columns, other.Columns...)
	return out
}
