package types

// DefaultBatchSize is the shared batch size of the vectorized executor: the
// number of rows moved per operator call and per interconnect send when no
// explicit size is configured (cluster.Config.ExecBatchSize or
// cluster.QueryResources.BatchSize).
const DefaultBatchSize = 256

// RowBatch is the unit of batch-at-a-time execution: an ordered slice of
// rows whose backing array is reused across Reset calls, so a producer that
// fills, hands out, and resets one batch per operator call allocates the
// container once.
//
// Ownership convention used throughout the executor: the *container*
// (b.Rows and b.Sel) belongs to the producer and is invalidated by the
// producer's next batch, while the Row values inside are never overwritten in
// place — consumers that retain rows past one call may keep the Row headers
// but must copy the slice (CloneRows) if they need the container itself.
//
// Filtering uses a selection vector instead of compaction: when Sel is
// non-nil the live rows are Rows[Sel[0]], Rows[Sel[1]], ... and the rest of
// Rows is dead weight that downstream operators must not look at. Operators
// iterate live rows via Len/Live; a batch only becomes dense again when it
// crosses an ownership boundary that copies it (CloneRows/DeepClone, e.g. a
// motion send) or when Densify is called explicitly.
type RowBatch struct {
	Rows []Row
	// Sel is the selection vector: ascending indexes into Rows marking the
	// rows that survived filtering. nil means every row is live. An empty
	// non-nil Sel means the whole batch was filtered out.
	Sel []int
}

// NewRowBatch returns an empty batch with the given row capacity.
func NewRowBatch(capacity int) *RowBatch {
	if capacity < 1 {
		capacity = DefaultBatchSize
	}
	return &RowBatch{Rows: make([]Row, 0, capacity)}
}

// Len returns the number of live rows in the batch (the selection's length
// when a selection vector is set).
func (b *RowBatch) Len() int {
	if b.Sel != nil {
		return len(b.Sel)
	}
	return len(b.Rows)
}

// Live returns the i-th live row (0 <= i < Len()).
func (b *RowBatch) Live(i int) Row {
	if b.Sel != nil {
		return b.Rows[b.Sel[i]]
	}
	return b.Rows[i]
}

// Append adds a row to the batch. Producers fill dense batches; appending to
// a batch that carries a selection vector is a misuse (the new row's index
// would not be selected).
func (b *RowBatch) Append(r Row) { b.Rows = append(b.Rows, r) }

// Reset truncates the batch, keeping the backing array for reuse and
// clearing any selection.
func (b *RowBatch) Reset() {
	b.Rows = b.Rows[:0]
	b.Sel = nil
}

// Cap returns the row capacity of the backing array.
func (b *RowBatch) Cap() int { return cap(b.Rows) }

// Densify compacts the live rows to the front of Rows and clears the
// selection vector, so the batch can be handed to selection-unaware code
// (e.g. appended to). A dense batch is returned unchanged.
func (b *RowBatch) Densify() {
	if b.Sel == nil {
		return
	}
	for i, s := range b.Sel {
		b.Rows[i] = b.Rows[s]
	}
	b.Rows = b.Rows[:len(b.Sel)]
	b.Sel = nil
}

// Size returns the accounted in-memory footprint of the live batched rows.
func (b *RowBatch) Size() int64 {
	var n int64
	for i, l := 0, b.Len(); i < l; i++ {
		n += b.Live(i).Size()
	}
	return n
}

// CloneRows returns a dense batch with a fresh container holding the live
// Row values. Use it to hand a batch across an ownership boundary (e.g. an
// interconnect send) while the producer keeps reusing its container.
func (b *RowBatch) CloneRows() *RowBatch {
	out := &RowBatch{Rows: make([]Row, b.Len())}
	for i := range out.Rows {
		out.Rows[i] = b.Live(i)
	}
	return out
}

// DeepClone returns a dense batch whose rows are themselves cloned. Used
// where the same rows fan out to multiple destinations that each take
// ownership (broadcast motions).
func (b *RowBatch) DeepClone() *RowBatch {
	out := &RowBatch{Rows: make([]Row, b.Len())}
	for i := range out.Rows {
		out.Rows[i] = b.Live(i).Clone()
	}
	return out
}
