package types

// DefaultBatchSize is the shared batch size of the vectorized executor: the
// number of rows moved per operator call and per interconnect send when no
// explicit size is configured (cluster.Config.ExecBatchSize or
// cluster.QueryResources.BatchSize).
const DefaultBatchSize = 256

// RowBatch is the unit of batch-at-a-time execution: an ordered slice of
// rows whose backing array is reused across Reset calls, so a producer that
// fills, hands out, and resets one batch per operator call allocates the
// container once.
//
// Ownership convention used throughout the executor: the *container*
// (b.Rows) belongs to the producer and is invalidated by the producer's next
// batch, while the Row values inside are never overwritten in place —
// consumers that retain rows past one call may keep the Row headers but must
// copy the slice (CloneRows) if they need the container itself.
type RowBatch struct {
	Rows []Row
}

// NewRowBatch returns an empty batch with the given row capacity.
func NewRowBatch(capacity int) *RowBatch {
	if capacity < 1 {
		capacity = DefaultBatchSize
	}
	return &RowBatch{Rows: make([]Row, 0, capacity)}
}

// Len returns the number of rows in the batch.
func (b *RowBatch) Len() int { return len(b.Rows) }

// Append adds a row to the batch.
func (b *RowBatch) Append(r Row) { b.Rows = append(b.Rows, r) }

// Reset truncates the batch, keeping the backing array for reuse.
func (b *RowBatch) Reset() { b.Rows = b.Rows[:0] }

// Cap returns the row capacity of the backing array.
func (b *RowBatch) Cap() int { return cap(b.Rows) }

// Size returns the accounted in-memory footprint of the batched rows.
func (b *RowBatch) Size() int64 {
	var n int64
	for _, r := range b.Rows {
		n += r.Size()
	}
	return n
}

// CloneRows returns a batch with a fresh container holding the same Row
// values. Use it to hand a batch across an ownership boundary (e.g. an
// interconnect send) while the producer keeps reusing its container.
func (b *RowBatch) CloneRows() *RowBatch {
	out := &RowBatch{Rows: make([]Row, len(b.Rows))}
	copy(out.Rows, b.Rows)
	return out
}

// DeepClone returns a batch whose rows are themselves cloned. Used where
// the same rows fan out to multiple destinations that each take ownership
// (broadcast motions).
func (b *RowBatch) DeepClone() *RowBatch {
	out := &RowBatch{Rows: make([]Row, len(b.Rows))}
	for i, r := range b.Rows {
		out.Rows[i] = r.Clone()
	}
	return out
}
