// Package interconnect implements the motion fabric that moves tuples
// between slices (paper §3.2 and Appendix B). Each motion owns one bounded
// stream per receiving location; a bounded buffer models the UDP
// send-buffer + ACK flow control: a sender whose peer's buffer is full
// blocks, exactly the waiting relationship that can produce network deadlock
// when executors demand tuples in the wrong order.
//
// Streams are batch-framed: each channel operation carries a whole
// types.RowBatch, so the vectorized executor pays one send per batch. The
// row-level Send/Recv API is kept as a shim (one-row batches) for the
// row-at-a-time executor and the deadlock demonstrations; buffer capacity is
// counted in sends, so the shim behaves exactly like the old per-row fabric.
package interconnect

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/types"
)

// Fabric is the per-query interconnect: a set of motion streams keyed by
// (sending slice, receiving location).
type Fabric struct {
	nseg    int
	bufSize int
	// delay simulates per-batch network latency on Send (0 = off).
	delay time.Duration

	mu      sync.Mutex
	streams map[streamKey]*stream

	rows    atomic.Int64
	batches atomic.Int64
	bytes   atomic.Int64
}

type streamKey struct {
	slice int
	dest  int // segment id, or -1 for the coordinator (gather)
}

type stream struct {
	ch      chan *types.RowBatch
	senders int32 // open sender count; the last DoneSending closes ch
}

// NewFabric builds a fabric for nseg segments with the given per-stream
// buffer capacity (sends) and optional per-send latency.
func NewFabric(nseg, bufSize int, delay time.Duration) *Fabric {
	if bufSize < 1 {
		bufSize = 1
	}
	return &Fabric{
		nseg:    nseg,
		bufSize: bufSize,
		delay:   delay,
		streams: make(map[streamKey]*stream),
	}
}

// OpenGather creates the single coordinator-bound stream of a gather motion
// with senders sending segments.
func (f *Fabric) OpenGather(slice, senders int) {
	f.open(streamKey{slice: slice, dest: -1}, senders)
}

// OpenFanOut creates one stream per segment for a redistribute or broadcast
// motion, each fed by senders sending segments.
func (f *Fabric) OpenFanOut(slice, senders int) {
	for d := 0; d < f.nseg; d++ {
		f.open(streamKey{slice: slice, dest: d}, senders)
	}
}

func (f *Fabric) open(k streamKey, senders int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.streams[k]; ok {
		return
	}
	f.streams[k] = &stream{ch: make(chan *types.RowBatch, f.bufSize), senders: int32(senders)}
}

func (f *Fabric) get(k streamKey) (*stream, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	s, ok := f.streams[k]
	if !ok {
		return nil, fmt.Errorf("interconnect: no stream for slice %d dest %d", k.slice, k.dest)
	}
	return s, nil
}

// SendBatch delivers a whole batch to the given destination of the slice's
// motion in one stream operation, blocking while the destination buffer is
// full (flow control). dest -1 is the coordinator. The batch is handed off:
// the sender must not reuse its container afterwards.
func (f *Fabric) SendBatch(ctx context.Context, slice, dest int, b *types.RowBatch) error {
	if b == nil || b.Len() == 0 {
		return nil
	}
	s, err := f.get(streamKey{slice: slice, dest: dest})
	if err != nil {
		return err
	}
	if f.delay > 0 {
		time.Sleep(f.delay)
	}
	select {
	case s.ch <- b:
		f.rows.Add(int64(b.Len()))
		f.batches.Add(1)
		f.bytes.Add(b.Size())
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Send delivers one row (a one-row batch) — the row-at-a-time shim.
func (f *Fabric) Send(ctx context.Context, slice, dest int, row types.Row) error {
	return f.SendBatch(ctx, slice, dest, &types.RowBatch{Rows: []types.Row{row}})
}

// TrySend is Send without blocking; it reports false when the buffer is
// full. Used by the network-deadlock demonstration.
func (f *Fabric) TrySend(slice, dest int, row types.Row) (bool, error) {
	s, err := f.get(streamKey{slice: slice, dest: dest})
	if err != nil {
		return false, err
	}
	b := &types.RowBatch{Rows: []types.Row{row}}
	select {
	case s.ch <- b:
		f.rows.Add(1)
		f.batches.Add(1)
		f.bytes.Add(b.Size())
		return true, nil
	default:
		return false, nil
	}
}

// DoneSending signals that one sender of the slice finished; the last
// sender closes every destination stream of the motion.
func (f *Fabric) DoneSending(slice int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for k, s := range f.streams {
		if k.slice != slice {
			continue
		}
		if atomic.AddInt32(&s.senders, -1) == 0 {
			close(s.ch)
		}
	}
}

// Receiver returns the exec-facing receive endpoint for (slice, dest).
func (f *Fabric) Receiver(slice, dest int) *StreamReceiver {
	s, err := f.get(streamKey{slice: slice, dest: dest})
	if err != nil {
		return &StreamReceiver{err: err}
	}
	return &StreamReceiver{s: s}
}

// Stats returns rows and bytes moved through the fabric.
func (f *Fabric) Stats() (rows, bytes int64) {
	return f.rows.Load(), f.bytes.Load()
}

// BatchStats returns how many stream operations (batches) carried those
// rows — the fabric's framing efficiency.
func (f *Fabric) BatchStats() (batches int64) {
	return f.batches.Load()
}

// StreamReceiver adapts a stream to the executor's Receiver and
// BatchReceiver interfaces. A StreamReceiver is consumed by a single
// goroutine (one receiving location of one motion).
type StreamReceiver struct {
	s   *stream
	err error
	cur *types.RowBatch // partially consumed batch for row-at-a-time Recv
	pos int
}

// RecvBatch implements exec.BatchReceiver: one stream operation per batch.
// The returned batch is owned by the caller.
func (r *StreamReceiver) RecvBatch(ctx context.Context) (*types.RowBatch, bool, error) {
	if r.err != nil {
		return nil, false, r.err
	}
	select {
	case b, ok := <-r.s.ch:
		return b, ok, nil
	case <-ctx.Done():
		return nil, false, ctx.Err()
	}
}

// Recv implements exec.Receiver, unpacking batches row by row.
func (r *StreamReceiver) Recv(ctx context.Context) (types.Row, bool, error) {
	for r.cur == nil || r.pos >= r.cur.Len() {
		b, ok, err := r.RecvBatch(ctx)
		if err != nil || !ok {
			return nil, false, err
		}
		r.cur, r.pos = b, 0
	}
	row := r.cur.Live(r.pos) // motion batches arrive dense; Live is belt-and-braces
	r.pos++
	return row, true, nil
}
