// Package interconnect implements the motion fabric that moves tuples
// between slices (paper §3.2 and Appendix B). Each motion owns one bounded
// stream per receiving location; a bounded buffer models the UDP
// send-buffer + ACK flow control: a sender whose peer's buffer is full
// blocks, exactly the waiting relationship that can produce network deadlock
// when executors demand tuples in the wrong order.
package interconnect

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/types"
)

// Fabric is the per-query interconnect: a set of motion streams keyed by
// (sending slice, receiving location).
type Fabric struct {
	nseg    int
	bufSize int
	// delay simulates per-batch network latency on Send (0 = off).
	delay time.Duration

	mu      sync.Mutex
	streams map[streamKey]*stream

	rows  atomic.Int64
	bytes atomic.Int64
}

type streamKey struct {
	slice int
	dest  int // segment id, or -1 for the coordinator (gather)
}

type stream struct {
	ch      chan types.Row
	senders int32 // open sender count; the last DoneSending closes ch
}

// NewFabric builds a fabric for nseg segments with the given per-stream
// buffer capacity (rows) and optional per-send latency.
func NewFabric(nseg, bufSize int, delay time.Duration) *Fabric {
	if bufSize < 1 {
		bufSize = 1
	}
	return &Fabric{
		nseg:    nseg,
		bufSize: bufSize,
		delay:   delay,
		streams: make(map[streamKey]*stream),
	}
}

// OpenGather creates the single coordinator-bound stream of a gather motion
// with senders sending segments.
func (f *Fabric) OpenGather(slice, senders int) {
	f.open(streamKey{slice: slice, dest: -1}, senders)
}

// OpenFanOut creates one stream per segment for a redistribute or broadcast
// motion, each fed by senders sending segments.
func (f *Fabric) OpenFanOut(slice, senders int) {
	for d := 0; d < f.nseg; d++ {
		f.open(streamKey{slice: slice, dest: d}, senders)
	}
}

func (f *Fabric) open(k streamKey, senders int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.streams[k]; ok {
		return
	}
	f.streams[k] = &stream{ch: make(chan types.Row, f.bufSize), senders: int32(senders)}
}

func (f *Fabric) get(k streamKey) (*stream, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	s, ok := f.streams[k]
	if !ok {
		return nil, fmt.Errorf("interconnect: no stream for slice %d dest %d", k.slice, k.dest)
	}
	return s, nil
}

// Send delivers row to the given destination of the slice's motion,
// blocking while the destination buffer is full (flow control). dest -1 is
// the coordinator.
func (f *Fabric) Send(ctx context.Context, slice, dest int, row types.Row) error {
	s, err := f.get(streamKey{slice: slice, dest: dest})
	if err != nil {
		return err
	}
	if f.delay > 0 {
		time.Sleep(f.delay)
	}
	select {
	case s.ch <- row:
		f.rows.Add(1)
		f.bytes.Add(row.Size())
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// TrySend is Send without blocking; it reports false when the buffer is
// full. Used by the network-deadlock demonstration.
func (f *Fabric) TrySend(slice, dest int, row types.Row) (bool, error) {
	s, err := f.get(streamKey{slice: slice, dest: dest})
	if err != nil {
		return false, err
	}
	select {
	case s.ch <- row:
		f.rows.Add(1)
		f.bytes.Add(row.Size())
		return true, nil
	default:
		return false, nil
	}
}

// DoneSending signals that one sender of the slice finished; the last
// sender closes every destination stream of the motion.
func (f *Fabric) DoneSending(slice int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for k, s := range f.streams {
		if k.slice != slice {
			continue
		}
		if atomic.AddInt32(&s.senders, -1) == 0 {
			close(s.ch)
		}
	}
}

// Receiver returns the exec-facing receive endpoint for (slice, dest).
func (f *Fabric) Receiver(slice, dest int) *StreamReceiver {
	s, err := f.get(streamKey{slice: slice, dest: dest})
	if err != nil {
		return &StreamReceiver{err: err}
	}
	return &StreamReceiver{s: s}
}

// Stats returns rows and bytes moved through the fabric.
func (f *Fabric) Stats() (rows, bytes int64) {
	return f.rows.Load(), f.bytes.Load()
}

// StreamReceiver adapts a stream to the executor's Receiver interface.
type StreamReceiver struct {
	s   *stream
	err error
}

// Recv implements exec.Receiver.
func (r *StreamReceiver) Recv(ctx context.Context) (types.Row, bool, error) {
	if r.err != nil {
		return nil, false, r.err
	}
	select {
	case row, ok := <-r.s.ch:
		return row, ok, nil
	case <-ctx.Done():
		return nil, false, ctx.Err()
	}
}
