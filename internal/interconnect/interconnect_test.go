package interconnect

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/types"
)

func row(v int64) types.Row { return types.Row{types.NewInt(v)} }

func TestGatherDeliversAllAndCloses(t *testing.T) {
	f := NewFabric(3, 16, 0)
	f.OpenGather(1, 3)
	ctx := context.Background()
	var wg sync.WaitGroup
	for seg := 0; seg < 3; seg++ {
		seg := seg
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer f.DoneSending(1)
			for i := 0; i < 10; i++ {
				if err := f.Send(ctx, 1, -1, row(int64(seg*100+i))); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	r := f.Receiver(1, -1)
	got := 0
	for {
		_, ok, err := r.Recv(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		got++
	}
	wg.Wait()
	if got != 30 {
		t.Fatalf("received %d rows, want 30", got)
	}
	rows, _ := f.Stats()
	if rows != 30 {
		t.Fatalf("stats rows = %d", rows)
	}
}

func TestFanOutRouting(t *testing.T) {
	f := NewFabric(2, 16, 0)
	f.OpenFanOut(2, 1)
	ctx := context.Background()
	// Send explicit destinations.
	for i := 0; i < 10; i++ {
		if err := f.Send(ctx, 2, i%2, row(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	f.DoneSending(2)
	for dest := 0; dest < 2; dest++ {
		r := f.Receiver(2, dest)
		n := 0
		for {
			v, ok, err := r.Recv(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				break
			}
			if int(v[0].Int())%2 != dest {
				t.Fatalf("row %v misrouted to %d", v, dest)
			}
			n++
		}
		if n != 5 {
			t.Fatalf("dest %d received %d", dest, n)
		}
	}
}

func TestFlowControlBlocksSender(t *testing.T) {
	f := NewFabric(1, 2, 0) // tiny buffer
	f.OpenGather(1, 1)
	ctx := context.Background()
	sent := make(chan int, 100)
	go func() {
		for i := 0; ; i++ {
			if err := f.Send(ctx, 1, -1, row(int64(i))); err != nil {
				return
			}
			sent <- i
		}
	}()
	time.Sleep(20 * time.Millisecond)
	// Buffer holds 2 rows; sender must be blocked on the third.
	if n := len(sent); n > 3 {
		t.Fatalf("sender ran ahead of flow control: %d sends", n)
	}
	// Draining unblocks it.
	r := f.Receiver(1, -1)
	for i := 0; i < 10; i++ {
		if _, ok, err := r.Recv(ctx); err != nil || !ok {
			t.Fatalf("recv %d: %v %v", i, ok, err)
		}
	}
}

func TestTrySendReportsFullBuffer(t *testing.T) {
	f := NewFabric(1, 1, 0)
	f.OpenGather(1, 1)
	ok, err := f.TrySend(1, -1, row(1))
	if err != nil || !ok {
		t.Fatal("first send should fit")
	}
	ok, err = f.TrySend(1, -1, row(2))
	if err != nil || ok {
		t.Fatal("second send should report full")
	}
}

func TestRecvCancellation(t *testing.T) {
	f := NewFabric(1, 1, 0)
	f.OpenGather(1, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	r := f.Receiver(1, -1)
	_, _, err := r.Recv(ctx)
	if err == nil {
		t.Fatal("recv on empty stream must respect ctx")
	}
}

func TestUnknownStreamErrors(t *testing.T) {
	f := NewFabric(1, 1, 0)
	if err := f.Send(context.Background(), 9, -1, row(1)); err == nil {
		t.Fatal("send to unopened motion must fail")
	}
	r := f.Receiver(9, -1)
	if _, _, err := r.Recv(context.Background()); err == nil {
		t.Fatal("recv from unopened motion must fail")
	}
}

func batch(vals ...int64) *types.RowBatch {
	b := types.NewRowBatch(len(vals))
	for _, v := range vals {
		b.Append(row(v))
	}
	return b
}

// TestBatchFramingPreservesOrder sends a mix of whole batches and single
// rows down one stream and checks the row-level view preserves order while
// the batch counter reflects the framing.
func TestBatchFramingPreservesOrder(t *testing.T) {
	f := NewFabric(1, 16, 0)
	f.OpenGather(1, 1)
	ctx := context.Background()
	if err := f.SendBatch(ctx, 1, -1, batch(0, 1, 2)); err != nil {
		t.Fatal(err)
	}
	if err := f.Send(ctx, 1, -1, row(3)); err != nil {
		t.Fatal(err)
	}
	if err := f.SendBatch(ctx, 1, -1, batch(4, 5)); err != nil {
		t.Fatal(err)
	}
	// Empty batches are dropped, not framed.
	if err := f.SendBatch(ctx, 1, -1, types.NewRowBatch(4)); err != nil {
		t.Fatal(err)
	}
	f.DoneSending(1)
	r := f.Receiver(1, -1)
	for i := 0; i < 6; i++ {
		v, ok, err := r.Recv(ctx)
		if err != nil || !ok {
			t.Fatalf("recv %d: ok=%v err=%v", i, ok, err)
		}
		if v[0].Int() != int64(i) {
			t.Fatalf("row %d out of order: %v", i, v)
		}
	}
	if _, ok, _ := r.Recv(ctx); ok {
		t.Fatal("stream should be closed")
	}
	rows, _ := f.Stats()
	if rows != 6 {
		t.Fatalf("stats rows = %d", rows)
	}
	if n := f.BatchStats(); n != 3 {
		t.Fatalf("stream operations = %d, want 3 (two batches + one row)", n)
	}
}

// TestBatchFanOutPerDestination checks that batch sends to different
// destinations of a fan-out motion stay separated and RecvBatch hands back
// whole frames.
func TestBatchFanOutPerDestination(t *testing.T) {
	f := NewFabric(2, 16, 0)
	f.OpenFanOut(3, 1)
	ctx := context.Background()
	if err := f.SendBatch(ctx, 3, 0, batch(0, 2, 4)); err != nil {
		t.Fatal(err)
	}
	if err := f.SendBatch(ctx, 3, 1, batch(1, 3)); err != nil {
		t.Fatal(err)
	}
	f.DoneSending(3)
	for dest, want := range [][]int64{{0, 2, 4}, {1, 3}} {
		r := f.Receiver(3, dest)
		b, ok, err := r.RecvBatch(ctx)
		if err != nil || !ok {
			t.Fatalf("dest %d: ok=%v err=%v", dest, ok, err)
		}
		if b.Len() != len(want) {
			t.Fatalf("dest %d: frame of %d rows, want %d", dest, b.Len(), len(want))
		}
		for i, v := range want {
			if b.Rows[i][0].Int() != v {
				t.Fatalf("dest %d row %d: %v", dest, i, b.Rows[i])
			}
		}
		if _, ok, _ := r.RecvBatch(ctx); ok {
			t.Fatalf("dest %d: expected closed stream", dest)
		}
	}
}

// TestNetworkDeadlockPreventedByPrefetch demonstrates the paper's Appendix B
// scenario at the interconnect level.
//
// Without inner-side prefetch: a join executor that pulls one outer tuple
// and then switches to the inner stream can leave a producer blocked on a
// full buffer that nobody is draining while the consumer waits on a stream
// that will only fill after the producer progresses — mutual waiting, i.e.
// network deadlock. With prefetch (drain the inner motion fully first, as
// our hash/nest-loop joins do) the cycle cannot form.
func TestNetworkDeadlockPreventedByPrefetch(t *testing.T) {
	run := func(prefetchInner bool) bool {
		// Motion 1 = outer stream, Motion 2 = inner stream, one segment.
		f := NewFabric(1, 1, 0) // 1-row buffers: easiest to wedge
		f.OpenGather(1, 1)
		f.OpenGather(2, 1)
		ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
		defer cancel()

		// The producer interleaves: it must finish sending ALL outer rows
		// before it produces inner rows (modeling the upstream slice whose
		// send-buffer toward the join fills up).
		prodDone := make(chan struct{})
		go func() {
			defer close(prodDone)
			for i := 0; i < 5; i++ {
				if f.Send(ctx, 1, -1, row(int64(i))) != nil {
					return
				}
			}
			f.DoneSending(1)
			for i := 0; i < 5; i++ {
				if f.Send(ctx, 2, -1, row(int64(100+i))) != nil {
					return
				}
			}
			f.DoneSending(2)
		}()

		consumed := make(chan bool, 1)
		go func() {
			outer := f.Receiver(1, -1)
			inner := f.Receiver(2, -1)
			if prefetchInner {
				// Deadlock-safe order… except the producer here emits outer
				// first; prefetching the OUTER side fully models Greenplum's
				// "materialize the blocked side before switching".
				for {
					_, ok, err := outer.Recv(ctx)
					if err != nil {
						consumed <- false
						return
					}
					if !ok {
						break
					}
				}
				for {
					_, ok, err := inner.Recv(ctx)
					if err != nil {
						consumed <- false
						return
					}
					if !ok {
						break
					}
				}
				consumed <- true
				return
			}
			// Demand-driven order: one outer row, then switch to inner —
			// but inner rows only appear after ALL outer rows are sent,
			// and the outer buffer (1 row) is full: wedged.
			if _, _, err := outer.Recv(ctx); err != nil {
				consumed <- false
				return
			}
			if _, _, err := inner.Recv(ctx); err != nil {
				consumed <- false
				return
			}
			consumed <- true
		}()

		return <-consumed
	}

	if run(false) {
		t.Fatal("demand-driven order should deadlock (timeout) with tiny buffers")
	}
	if !run(true) {
		t.Fatal("prefetch order must complete")
	}
}
