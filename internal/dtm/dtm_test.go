package dtm

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/txn"
)

func TestCoordinatorSnapshots(t *testing.T) {
	c := NewCoordinator()
	d1 := c.Begin()
	c.MarkCommitted(d1)
	d2 := c.Begin() // in progress
	snap := c.Snapshot()
	d3 := c.Begin() // after snapshot

	if !snap.Sees(d1) {
		t.Error("committed dxid invisible")
	}
	if snap.Sees(d2) {
		t.Error("in-progress dxid visible")
	}
	if snap.Sees(d3) {
		t.Error("future dxid visible")
	}
	if snap.Sees(InvalidDXID) {
		t.Error("invalid dxid visible")
	}
	c.MarkCommitted(d2)
	if snap.Sees(d2) {
		t.Error("snapshot stability violated")
	}
	c.MarkAborted(d3)
	if c.InProgressCount() != 0 {
		t.Errorf("in-progress = %d", c.InProgressCount())
	}
}

func TestOldestInProgress(t *testing.T) {
	c := NewCoordinator()
	d1 := c.Begin()
	d2 := c.Begin()
	if c.OldestInProgress() != d1 {
		t.Fatal("oldest")
	}
	c.MarkCommitted(d1)
	if c.OldestInProgress() != d2 {
		t.Fatal("oldest after commit")
	}
}

func TestXidMapping(t *testing.T) {
	m := NewXidMapping()
	m.Register(txn.XID(10), DXID(100))
	m.Register(txn.XID(11), DXID(101))
	if d, ok := m.DistFor(10); !ok || d != 100 {
		t.Fatal("DistFor")
	}
	if l, ok := m.LocalFor(101); !ok || l != 11 {
		t.Fatal("LocalFor")
	}
	if _, ok := m.DistFor(99); ok {
		t.Fatal("phantom mapping")
	}
	// Truncation below the horizon (paper §5.1).
	n := m.Truncate(101)
	if n != 1 || m.Len() != 1 {
		t.Fatalf("truncate removed %d, len %d", n, m.Len())
	}
	if _, ok := m.DistFor(10); ok {
		t.Fatal("truncated entry still present")
	}
	if _, ok := m.DistFor(11); !ok {
		t.Fatal("retained entry lost")
	}
	// Re-truncating at or below the horizon is a no-op.
	if m.Truncate(100) != 0 {
		t.Fatal("backwards truncate did something")
	}
	ins, rem := m.Stats()
	if ins != 2 || rem != 1 {
		t.Fatalf("stats: %d %d", ins, rem)
	}
}

// fakeParticipant records protocol calls.
type fakeParticipant struct {
	mu       sync.Mutex
	id       int
	prepared bool
	commits  int
	onePhase int
	aborts   int
	failPrep bool
}

func (f *fakeParticipant) SegID() int { return f.id }
func (f *fakeParticipant) Prepare(DXID) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.failPrep {
		return errors.New("prepare refused")
	}
	f.prepared = true
	return nil
}
func (f *fakeParticipant) CommitPrepared(DXID) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.commits++
	return nil
}
func (f *fakeParticipant) AbortPrepared(DXID) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.aborts++
	return nil
}
func (f *fakeParticipant) CommitOnePhase(DXID) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.onePhase++
	return nil
}
func (f *fakeParticipant) Abort(DXID) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.aborts++
	return nil
}

func TestCommitReadOnly(t *testing.T) {
	c := NewCoordinator()
	d := c.Begin()
	st, err := Commit(c, d, nil, true)
	if err != nil || st.Protocol != ProtocolReadOnly || st.Fsyncs != 0 {
		t.Fatalf("read-only: %+v %v", st, err)
	}
	if c.InProgressCount() != 0 {
		t.Fatal("not completed")
	}
}

func TestCommitOnePhaseSkipsPrepare(t *testing.T) {
	c := NewCoordinator()
	d := c.Begin()
	p := &fakeParticipant{id: 0}
	st, err := Commit(c, d, []Participant{p}, true)
	if err != nil {
		t.Fatal(err)
	}
	if st.Protocol != ProtocolOnePhase {
		t.Fatalf("protocol = %s", st.Protocol)
	}
	if p.prepared || p.onePhase != 1 {
		t.Fatalf("participant calls: %+v", p)
	}
	// Paper Fig. 10: one round trip, one fsync.
	if st.Rounds != 1 || st.Fsyncs != 1 || st.Messages != 1 {
		t.Fatalf("one-phase cost: %+v", st)
	}
}

func TestCommitTwoPhaseWhenDisabledOrMultiSegment(t *testing.T) {
	// 1PC disabled: even a single writer goes through 2PC.
	c := NewCoordinator()
	d := c.Begin()
	p := &fakeParticipant{id: 0}
	st, err := Commit(c, d, []Participant{p}, false)
	if err != nil || st.Protocol != ProtocolTwoPhase {
		t.Fatalf("%+v %v", st, err)
	}
	if !p.prepared || p.commits != 1 {
		t.Fatalf("2pc calls: %+v", p)
	}
	// Two writers: 2PC regardless of the 1PC flag.
	d2 := c.Begin()
	p1, p2 := &fakeParticipant{id: 0}, &fakeParticipant{id: 1}
	st, err = Commit(c, d2, []Participant{p1, p2}, true)
	if err != nil || st.Protocol != ProtocolTwoPhase {
		t.Fatalf("%+v %v", st, err)
	}
	// Paper Fig. 10 cost: 2 waves, per-writer prepare+commit fsyncs plus
	// the coordinator commit record.
	if st.Rounds != 2 || st.Messages != 4 || st.Fsyncs != 2+1+2 {
		t.Fatalf("two-phase cost: %+v", st)
	}
}

func TestPrepareFailureAbortsAll(t *testing.T) {
	c := NewCoordinator()
	d := c.Begin()
	good := &fakeParticipant{id: 0}
	bad := &fakeParticipant{id: 1, failPrep: true}
	_, err := Commit(c, d, []Participant{good, bad}, false)
	if err == nil {
		t.Fatal("commit must fail")
	}
	if good.commits != 0 {
		t.Fatal("failed 2PC committed a participant")
	}
	if good.aborts == 0 || bad.aborts == 0 {
		t.Fatalf("aborts not propagated: good=%+v bad=%+v", good, bad)
	}
	if c.InProgressCount() != 0 {
		t.Fatal("txn still in progress after failed commit")
	}
}

func TestAbortFansOut(t *testing.T) {
	c := NewCoordinator()
	d := c.Begin()
	p1, p2 := &fakeParticipant{id: 0}, &fakeParticipant{id: 1}
	Abort(c, d, []Participant{p1, p2})
	if p1.aborts != 1 || p2.aborts != 1 {
		t.Fatal("abort fan-out")
	}
	if c.InProgressCount() != 0 {
		t.Fatal("txn still live")
	}
}

func TestViewSelfVisibility(t *testing.T) {
	m := NewXidMapping()
	snap := &DistSnapshot{Xmax: 10, InProgress: map[DXID]struct{}{5: {}}}
	v := &View{Mapping: m, Snap: snap, SelfLocal: 3, SelfDist: 5}
	// Own dxid is visible even though the snapshot has it in-progress.
	if !v.DistSees(5) {
		t.Fatal("own dxid invisible")
	}
	if d, ok := v.DistXidFor(3); !ok || d != 5 {
		t.Fatal("self mapping")
	}
	// Another local xid resolves through the mapping.
	m.Register(7, 4)
	if d, ok := v.DistXidFor(7); !ok || d != 4 {
		t.Fatal("mapping lookup")
	}
	if !v.DistSees(4) {
		t.Fatal("old committed dxid invisible")
	}
}
