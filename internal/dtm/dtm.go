// Package dtm implements distributed transaction management (paper §5):
// coordinator-assigned distributed transaction identifiers, distributed
// snapshots (the in-progress dxid list plus the largest committed dxid), the
// two-phase commit protocol, and the one-phase commit optimization for
// transactions that write exactly one segment.
package dtm

import (
	"sync"
)

// DXID is a distributed transaction identifier: a monotonically increasing
// integer assigned by the coordinator (paper §5). 0 is invalid.
type DXID uint64

// InvalidDXID is the zero distributed xid.
const InvalidDXID DXID = 0

// DistSnapshot is a distributed snapshot: every dxid in InProgress was
// running when the snapshot was created; MaxCommitted is the largest dxid
// committed at creation time; Xmax is the next dxid to be assigned.
type DistSnapshot struct {
	Xmax         DXID
	MaxCommitted DXID
	InProgress   map[DXID]struct{}
}

// Sees reports whether the snapshot considers dxid committed-before-snapshot.
func (s *DistSnapshot) Sees(dxid DXID) bool {
	if dxid == InvalidDXID || dxid >= s.Xmax {
		return false
	}
	if _, running := s.InProgress[dxid]; running {
		return false
	}
	// Not in-progress and older than xmax: it completed before the snapshot.
	// Aborted transactions never reach MaxCommitted but their tuples are
	// filtered by the local clog on each segment; treating "completed" as
	// visible here is safe because visibility conjuncts with the local
	// commit status (see txn.VisibilityChecker).
	return true
}

// Coordinator is the coordinator-side distributed transaction state.
type Coordinator struct {
	mu           sync.Mutex
	nextDxid     DXID
	inProgress   map[DXID]struct{}
	maxCommitted DXID
	// commitLog is the set of dxids whose two-phase commit decision was
	// durably recorded between the PREPARE and COMMIT waves. Promotion-time
	// 2PC recovery resolves an in-doubt prepared transaction by this set:
	// commit record present → commit wins; absent (and the protocol is no
	// longer running) → abort (the paper's presumed-abort resolution).
	commitLog map[DXID]struct{}
}

// NewCoordinator returns a coordinator whose first transaction gets dxid 1.
func NewCoordinator() *Coordinator {
	return &Coordinator{
		nextDxid:   1,
		inProgress: make(map[DXID]struct{}),
		commitLog:  make(map[DXID]struct{}),
	}
}

// LogCommitRecord durably notes the commit decision for dxid (called by the
// cluster's coordinator-WAL hook between the 2PC waves).
func (c *Coordinator) LogCommitRecord(dxid DXID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.commitLog[dxid] = struct{}{}
}

// HasCommitRecord reports whether the commit decision for dxid was durably
// recorded.
func (c *Coordinator) HasCommitRecord(dxid DXID) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.commitLog[dxid]
	return ok
}

// TruncateCommitLog discards commit records below the horizon (the oldest
// in-progress dxid): a transaction below it has fully acknowledged, so its
// outcome record reached every segment log — and therefore every mirror's
// queue — and promotion-time recovery can never need the coordinator copy
// again. Same role as XidMapping.Truncate: keep the metadata small. It
// returns the number of records removed.
func (c *Coordinator) TruncateCommitLog(horizon DXID) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for d := range c.commitLog {
		if d < horizon {
			delete(c.commitLog, d)
			n++
		}
	}
	return n
}

// Begin assigns a new distributed transaction id.
func (c *Coordinator) Begin() DXID {
	c.mu.Lock()
	defer c.mu.Unlock()
	d := c.nextDxid
	c.nextDxid++
	c.inProgress[d] = struct{}{}
	return d
}

// Snapshot captures the distributed in-progress set. Called per statement
// (read committed) by the session layer.
func (c *Coordinator) Snapshot() *DistSnapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := &DistSnapshot{
		Xmax:         c.nextDxid,
		MaxCommitted: c.maxCommitted,
		InProgress:   make(map[DXID]struct{}, len(c.inProgress)),
	}
	for d := range c.inProgress {
		s.InProgress[d] = struct{}{}
	}
	return s
}

// MarkCommitted removes dxid from the in-progress set after the commit
// protocol fully acknowledges — for 1PC, only after "Commit OK" arrives
// (paper §5.2), so concurrent snapshots keep seeing it as running until the
// segment has durably committed.
func (c *Coordinator) MarkCommitted(dxid DXID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.inProgress, dxid)
	if dxid > c.maxCommitted {
		c.maxCommitted = dxid
	}
}

// MarkAborted removes dxid from the in-progress set without advancing
// MaxCommitted.
func (c *Coordinator) MarkAborted(dxid DXID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.inProgress, dxid)
}

// OldestInProgress returns the smallest running dxid (or nextDxid when
// idle); segments truncate their local↔distributed mapping below it.
func (c *Coordinator) OldestInProgress() DXID {
	c.mu.Lock()
	defer c.mu.Unlock()
	oldest := c.nextDxid
	for d := range c.inProgress {
		if d < oldest {
			oldest = d
		}
	}
	return oldest
}

// IsInProgress reports whether dxid is still in the coordinator's
// in-progress set (i.e. its commit protocol has not fully acknowledged).
func (c *Coordinator) IsInProgress(dxid DXID) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.inProgress[dxid]
	return ok
}

// InProgressCount returns the number of live distributed transactions.
func (c *Coordinator) InProgressCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.inProgress)
}
