package dtm

import (
	"sync"

	"repro/internal/txn"
)

// XidMapping is a segment's local↔distributed transaction id map (paper
// §5.1). Every local transaction created on behalf of a distributed one
// registers here; scans consult it to translate a tuple's stamping local xid
// into a distributed xid for distributed-snapshot checks.
//
// The mapping is truncated up to the oldest distributed transaction that any
// live distributed snapshot can still see as running; below that horizon a
// segment falls back to purely local visibility (local xid + local
// snapshot), which is then equivalent.
type XidMapping struct {
	mu       sync.RWMutex
	toDist   map[txn.XID]DXID
	toLocal  map[DXID]txn.XID
	truncAt  DXID // entries with dxid < truncAt have been discarded
	inserted int64
	removed  int64
}

// NewXidMapping returns an empty mapping.
func NewXidMapping() *XidMapping {
	return &XidMapping{
		toDist:  make(map[txn.XID]DXID),
		toLocal: make(map[DXID]txn.XID),
	}
}

// Register records that local xid implements distributed dxid on this
// segment.
func (m *XidMapping) Register(local txn.XID, dxid DXID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.toDist[local] = dxid
	m.toLocal[dxid] = local
	m.inserted++
}

// DistFor returns the distributed xid for a local xid, if the entry is still
// retained.
func (m *XidMapping) DistFor(local txn.XID) (DXID, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	d, ok := m.toDist[local]
	return d, ok
}

// LocalFor returns the local xid implementing dxid on this segment.
func (m *XidMapping) LocalFor(dxid DXID) (txn.XID, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	l, ok := m.toLocal[dxid]
	return l, ok
}

// Truncate discards entries with dxid < horizon, keeping the metadata small
// (paper: "segments use this logic to frequently truncate the mapping
// meta-data"). It returns the number of entries removed.
func (m *XidMapping) Truncate(horizon DXID) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	if horizon <= m.truncAt {
		return 0
	}
	m.truncAt = horizon
	n := 0
	for d, l := range m.toLocal {
		if d < horizon {
			delete(m.toLocal, d)
			delete(m.toDist, l)
			n++
		}
	}
	m.removed += int64(n)
	return n
}

// Len returns the number of live entries.
func (m *XidMapping) Len() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.toDist)
}

// Stats returns cumulative insert/remove counters (for tests and metrics).
func (m *XidMapping) Stats() (inserted, removed int64) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.inserted, m.removed
}

// View binds a mapping and a distributed snapshot into the DistributedView
// the visibility checker consumes for one statement.
type View struct {
	Mapping *XidMapping
	Snap    *DistSnapshot
	// SelfLocal/SelfDist let a statement see its own transaction's writes.
	SelfLocal txn.XID
	SelfDist  DXID
}

// DistXidFor implements txn.DistributedView.
func (v *View) DistXidFor(local txn.XID) (uint64, bool) {
	if local == v.SelfLocal && local != txn.InvalidXID {
		return uint64(v.SelfDist), true
	}
	d, ok := v.Mapping.DistFor(local)
	return uint64(d), ok
}

// DistSees implements txn.DistributedView.
func (v *View) DistSees(dist uint64) bool {
	if DXID(dist) == v.SelfDist && v.SelfDist != InvalidDXID {
		return true
	}
	return v.Snap.Sees(DXID(dist))
}
