package dtm

import (
	"fmt"
	"sync"
)

// Participant is one segment's commit-protocol endpoint. The cluster layer
// implements it over the simulated interconnect, charging a network round
// trip per call and an fsync per durable state change.
type Participant interface {
	// SegID returns the participant's segment id.
	SegID() int
	// Prepare durably prepares the transaction (2PC phase one).
	Prepare(dxid DXID) error
	// CommitPrepared durably commits a prepared transaction (phase two).
	CommitPrepared(dxid DXID) error
	// AbortPrepared aborts a prepared transaction.
	AbortPrepared(dxid DXID) error
	// CommitOnePhase durably commits in a single step (1PC fast path).
	CommitOnePhase(dxid DXID) error
	// Abort rolls back an unprepared transaction.
	Abort(dxid DXID) error
}

// Protocol names the commit path taken.
type Protocol string

// Commit protocols.
const (
	// ProtocolReadOnly means no segment wrote; nothing to make durable.
	ProtocolReadOnly Protocol = "read-only"
	// ProtocolOnePhase is the single-segment fast path (paper §5.2).
	ProtocolOnePhase Protocol = "one-phase"
	// ProtocolTwoPhase is the general PREPARE/COMMIT protocol.
	ProtocolTwoPhase Protocol = "two-phase"
)

// CommitStats records the cost of one commit for the Fig. 10 experiment.
type CommitStats struct {
	Protocol Protocol
	// Messages counts coordinator→segment protocol messages (each costing a
	// network round trip, though rounds to different segments overlap).
	Messages int
	// Rounds counts sequential message waves (the wall-clock round trips:
	// 2PC = 2 waves, 1PC = 1).
	Rounds int
	// Fsyncs counts durable log writes across the cluster (segment
	// PREPAREs, the coordinator's commit record, and segment COMMITs).
	Fsyncs int
}

// fanOut invokes fn for every participant in parallel (Greenplum dispatches
// each protocol wave to all participants concurrently) and returns the
// first error.
func fanOut(ws []Participant, fn func(Participant) error) error {
	if len(ws) == 1 {
		return fn(ws[0])
	}
	var wg sync.WaitGroup
	errs := make([]error, len(ws))
	for i, w := range ws {
		wg.Add(1)
		go func(i int, w Participant) {
			defer wg.Done()
			errs[i] = fn(w)
		}(i, w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Commit drives the commit protocol for dxid over the writer participants.
// With onePhase enabled and exactly one writer, the PREPARE wave and the
// coordinator commit record are skipped (paper Fig. 10); otherwise full
// two-phase commit runs and coordLog — when non-nil — durably records the
// commit decision for dxid between the waves (the record promotion-time
// recovery consults to resolve in-doubt prepared transactions). The
// coordinator's in-progress entry is cleared only after the protocol fully
// acknowledges.
func Commit(coord *Coordinator, dxid DXID, writers []Participant, onePhase bool, coordLog ...func(DXID)) (CommitStats, error) {
	switch {
	case len(writers) == 0:
		coord.MarkCommitted(dxid)
		return CommitStats{Protocol: ProtocolReadOnly}, nil

	case onePhase && len(writers) == 1:
		st := CommitStats{Protocol: ProtocolOnePhase, Messages: 1, Rounds: 1, Fsyncs: 1}
		// Single COMMIT round trip; one fsync on the participating segment.
		// No PREPARE fsync on the segment, no commit-record fsync on the
		// coordinator (paper §5.2).
		if err := writers[0].CommitOnePhase(dxid); err != nil {
			// Roll the local transaction back so its locks and open-txn entry
			// don't outlive the decision. Abort is a no-op on a segment that
			// already resolved the transaction (recovered or down), so this
			// is safe even when the failure was an ambiguous ack loss.
			st.Messages++
			_ = writers[0].Abort(dxid)
			coord.MarkAborted(dxid)
			return st, fmt.Errorf("dtm: one-phase commit on seg %d: %w", writers[0].SegID(), err)
		}
		coord.MarkCommitted(dxid)
		return st, nil

	default:
		st := CommitStats{Protocol: ProtocolTwoPhase}
		// Wave one: PREPARE all writers in parallel.
		st.Messages += len(writers)
		st.Rounds++
		if err := fanOut(writers, func(w Participant) error { return w.Prepare(dxid) }); err != nil {
			// Abort everyone (prepared participants roll back their
			// prepared state, the rest roll back the live transaction —
			// both paths are handled by the participant).
			st.Messages += len(writers)
			st.Rounds++
			_ = fanOut(writers, func(w Participant) error {
				if aerr := w.AbortPrepared(dxid); aerr != nil {
					return w.Abort(dxid)
				}
				return nil
			})
			coord.MarkAborted(dxid)
			return st, fmt.Errorf("dtm: prepare failed: %w", err)
		}
		// Coordinator durably records the commit decision.
		for _, log := range coordLog {
			if log != nil {
				log(dxid)
			}
		}
		st.Fsyncs += len(writers) + 1
		// Wave two: COMMIT PREPARED all writers in parallel.
		st.Messages += len(writers)
		st.Rounds++
		st.Fsyncs += len(writers)
		if err := fanOut(writers, func(w Participant) error { return w.CommitPrepared(dxid) }); err != nil {
			// The decision is durably committed — an unreachable participant
			// (a segment whose failover failed or timed out) resolves it
			// from the commit record when it recovers. The coordinator
			// honors its own durable decision either way: leaving the dxid
			// in-progress would hide the committed rows on the participants
			// that did acknowledge and pin the truncation horizons forever.
			// The caller still sees the error (outcome reached, ack missing).
			coord.MarkCommitted(dxid)
			return st, fmt.Errorf("dtm: commit prepared failed: %w", err)
		}
		coord.MarkCommitted(dxid)
		return st, nil
	}
}

// Abort rolls back dxid on all writers in parallel.
func Abort(coord *Coordinator, dxid DXID, writers []Participant) {
	_ = fanOut(writers, func(w Participant) error { return w.Abort(dxid) })
	coord.MarkAborted(dxid)
}
