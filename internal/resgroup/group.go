package resgroup

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/catalog"
	"repro/internal/obs"
)

// Group is the runtime state of one resource group.
type Group struct {
	def    catalog.ResourceGroupDef
	mgr    *Manager
	global *GlobalVmem

	mu   sync.Mutex
	vmem Vmem

	// admission is the CONCURRENCY semaphore.
	admission chan struct{}

	// metrics
	admitted  int64
	cancelled int64
}

// Def returns the group's definition.
func (g *Group) Def() catalog.ResourceGroupDef { return g.def }

// Manager owns all resource groups plus the shared CPU and memory
// substrates.
type Manager struct {
	mu     sync.Mutex
	groups map[string]*Group
	cpu    *CPUSim
	global *GlobalVmem
	total  int64 // total cluster memory
	// granted tracks the MEMORY_LIMIT percentages already handed out, so the
	// global shared pool is what remains.
	grantedPct int
	// admWaits counts admissions that had to queue on a full CONCURRENCY
	// semaphore (nil-safe obs handle; set by the cluster's registry).
	admWaits *obs.Counter
}

// SetAdmissionWaits wires the counter incremented whenever an Admit call
// blocks waiting for a concurrency slot.
func (m *Manager) SetAdmissionWaits(c *obs.Counter) { m.admWaits = c }

// NewManager builds a manager simulating a machine with cores CPU cores and
// totalMemory bytes of RAM.
func NewManager(cores int, totalMemory int64) *Manager {
	return &Manager{
		groups: make(map[string]*Group),
		cpu:    NewCPUSim(cores),
		global: NewGlobalVmem(totalMemory), // shrinks as groups claim memory
		total:  totalMemory,
	}
}

// CPU exposes the simulated machine (the executor charges quanta to it).
func (m *Manager) CPU() *CPUSim { return m.cpu }

// Global exposes the global shared memory pool.
func (m *Manager) Global() *GlobalVmem { return m.global }

// parseCPUSetCount converts a "0-3" / "16-31" / "5" cpuset spec to a core
// count.
func parseCPUSetCount(spec string) (int, error) {
	if spec == "" {
		return 0, fmt.Errorf("resgroup: empty cpuset")
	}
	n := 0
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if lo, hi, found := strings.Cut(part, "-"); found {
			a, err1 := strconv.Atoi(lo)
			b, err2 := strconv.Atoi(hi)
			if err1 != nil || err2 != nil || b < a {
				return 0, fmt.Errorf("resgroup: bad cpuset range %q", part)
			}
			n += b - a + 1
		} else {
			if _, err := strconv.Atoi(part); err != nil {
				return 0, fmt.Errorf("resgroup: bad cpuset %q", part)
			}
			n++
		}
	}
	return n, nil
}

// CreateGroup instantiates runtime state for def. Memory layers follow the
// paper: slot = non-shared group memory / concurrency; group shared =
// MEMORY_SHARED_QUOTA percent of group memory; the global pool shrinks by
// the group's MEMORY_LIMIT.
func (m *Manager) CreateGroup(def catalog.ResourceGroupDef) (*Group, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	key := strings.ToLower(def.Name)
	if _, ok := m.groups[key]; ok {
		return nil, fmt.Errorf("resgroup: group %q already exists", def.Name)
	}
	conc := def.Concurrency
	if conc < 1 {
		conc = 1
	}
	groupMem := m.total * int64(def.MemoryLimit) / 100
	sharedQuota := int64(def.MemSharedQuota)
	groupShared := groupMem * sharedQuota / 100
	slotQuota := (groupMem - groupShared) / int64(conc)
	g := &Group{
		def:    def,
		mgr:    m,
		global: m.global,
		vmem: Vmem{
			slotQuota:      slotQuota,
			groupShared:    groupShared,
			groupSharedCap: groupShared,
		},
		admission: make(chan struct{}, conc),
	}
	// Claim the group's memory out of the global pool.
	if groupMem > 0 && !m.global.tryTake(groupMem) {
		return nil, fmt.Errorf("resgroup: not enough global memory for group %q", def.Name)
	}
	if def.CPUSet != "" {
		n, err := parseCPUSetCount(def.CPUSet)
		if err != nil {
			m.global.give(groupMem)
			return nil, err
		}
		m.cpu.SetCPUSet(key, n)
	} else {
		pct := def.CPURateLimit
		if pct <= 0 {
			pct = 10
		}
		m.cpu.SetShares(key, pct)
	}
	m.groups[key] = g
	return g, nil
}

// DropGroup removes a group and returns its resources.
func (m *Manager) DropGroup(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	key := strings.ToLower(name)
	g, ok := m.groups[key]
	if !ok {
		return fmt.Errorf("resgroup: group %q does not exist", name)
	}
	groupMem := m.total * int64(g.def.MemoryLimit) / 100
	m.global.give(groupMem)
	m.cpu.RemoveGroup(key)
	delete(m.groups, key)
	return nil
}

// Group returns the runtime group by name.
func (m *Manager) Group(name string) (*Group, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	g, ok := m.groups[strings.ToLower(name)]
	return g, ok
}

// Slot is one admitted query's resource handle.
type Slot struct {
	group *Group
	acct  memAccount
	done  bool
	mu    sync.Mutex
}

// Admit blocks until the group has a free concurrency slot (paper §6:
// CONCURRENCY "controls the maximum number of connections"). It fails with
// ctx's error if cancelled while queued.
func (g *Group) Admit(ctx context.Context) (*Slot, error) {
	select {
	case g.admission <- struct{}{}:
	default:
		g.mgr.admWaits.Add(1)
		select {
		case g.admission <- struct{}{}:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	g.mu.Lock()
	g.admitted++
	g.mu.Unlock()
	s := &Slot{group: g}
	s.acct.group = g
	return s, nil
}

// ChargeCPU performs d worth of CPU work under the group's CPU policy.
func (s *Slot) ChargeCPU(ctx context.Context, d time.Duration) error {
	return s.group.mgr.cpu.Run(ctx, strings.ToLower(s.group.def.Name), d)
}

// Grow charges memory; an *ErrOutOfMemory means the query must cancel.
func (s *Slot) Grow(n int64) error {
	err := s.acct.Grow(n)
	if err != nil {
		s.group.mu.Lock()
		s.group.cancelled++
		s.group.mu.Unlock()
	}
	return err
}

// Shrink returns memory early (e.g. a hash table freed mid-query).
func (s *Slot) Shrink(n int64) { s.acct.Shrink(n) }

// MemoryUsed returns the slot's accounted bytes.
func (s *Slot) MemoryUsed() int64 { return s.acct.Used() }

// MemoryHighWater returns the slot's peak accounted bytes — the vmem
// high-water mark a spilling executor is expected to keep near the spill
// budget instead of the full working set.
func (s *Slot) MemoryHighWater() int64 { return s.acct.HighWater() }

// ResetMemoryHighWater rebases the peak to current usage; the executor
// calls it per statement so peaks attribute to the statement that caused
// them, not the slot's (transaction's) lifetime.
func (s *Slot) ResetMemoryHighWater() { s.acct.resetHighWater() }

// Release frees all memory and the concurrency slot. Idempotent.
func (s *Slot) Release() {
	s.mu.Lock()
	if s.done {
		s.mu.Unlock()
		return
	}
	s.done = true
	s.mu.Unlock()
	s.acct.releaseAll()
	<-s.group.admission
}

// InUse returns the number of concurrency slots currently held — the
// session-teardown leak assertions of the connection-churn tests check it
// returns to zero after every socket is gone.
func (g *Group) InUse() int { return len(g.admission) }

// Stats returns admission and cancellation counters.
func (g *Group) Stats() (admitted, cancelled int64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.admitted, g.cancelled
}

// SlotQuota returns the per-query private memory budget (for tests).
func (g *Group) SlotQuota() int64 { return g.vmem.slotQuota }

// SpillBudget derives a statement's operator-memory budget — the bytes its
// blocking operators (sort, hash agg, hash join) may hold before spilling to
// disk: slot quota × memory_spill_ratio percent. Precedence for the ratio:
// sessionRatio (SET memory_spill_ratio; < 0 = unset), then the group's
// MEMORY_SPILL_RATIO, then defRatio (the cluster default). A resolved ratio
// of 0 disables spilling: operators grow in memory until the Vmemtracker
// cancels the query.
func (g *Group) SpillBudget(sessionRatio, defRatio int) int64 {
	ratio := defRatio
	if g.def.MemSpillRatio > 0 {
		ratio = g.def.MemSpillRatio
	}
	if sessionRatio >= 0 {
		ratio = sessionRatio
	}
	if ratio <= 0 {
		return 0
	}
	if ratio > 100 {
		ratio = 100
	}
	return g.vmem.slotQuota * int64(ratio) / 100
}

// GroupSharedFree returns the remaining group-shared bytes (for tests).
func (g *Group) GroupSharedFree() int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.vmem.groupShared
}
