package resgroup

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/catalog"
)

func testManager(t *testing.T) *Manager {
	t.Helper()
	return NewManager(4, 1000)
}

func TestCreateGroupMemoryLayers(t *testing.T) {
	m := testManager(t)
	// Paper §6: slot = non-shared group memory / concurrency; group shared
	// = MEMORY_SHARED_QUOTA% of group memory.
	g, err := m.CreateGroup(catalog.ResourceGroupDef{
		Name: "olap", Concurrency: 10, MemoryLimit: 40, MemSharedQuota: 50, CPURateLimit: 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	// group memory = 400; shared = 200; slot = 200/10 = 20.
	if g.SlotQuota() != 20 {
		t.Fatalf("slot quota = %d", g.SlotQuota())
	}
	if g.GroupSharedFree() != 200 {
		t.Fatalf("group shared = %d", g.GroupSharedFree())
	}
	if m.Global().Free() != 600 {
		t.Fatalf("global shared = %d", m.Global().Free())
	}
}

func TestThreeLayerGrowAndCancel(t *testing.T) {
	m := testManager(t)
	g, err := m.CreateGroup(catalog.ResourceGroupDef{
		Name: "g", Concurrency: 2, MemoryLimit: 20, MemSharedQuota: 50, CPURateLimit: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	// group mem 200: shared 100, slot 50 each.
	slot, err := g.Admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer slot.Release()

	// Layer 1: within slot quota.
	if err := slot.Grow(50); err != nil {
		t.Fatal(err)
	}
	// Layer 2: spills into group shared.
	if err := slot.Grow(100); err != nil {
		t.Fatal(err)
	}
	if g.GroupSharedFree() != 0 {
		t.Fatalf("group shared = %d", g.GroupSharedFree())
	}
	// Layer 3: global shared (800 available).
	if err := slot.Grow(700); err != nil {
		t.Fatal(err)
	}
	if m.Global().Free() != 100 {
		t.Fatalf("global = %d", m.Global().Free())
	}
	// Exhaust all three layers: query cancel.
	err = slot.Grow(200)
	var oom *ErrOutOfMemory
	if !errors.As(err, &oom) {
		t.Fatalf("err = %v, want ErrOutOfMemory", err)
	}
	if oom.Group != "g" {
		t.Fatalf("oom group = %q", oom.Group)
	}
	_, cancelled := g.Stats()
	if cancelled != 1 {
		t.Fatalf("cancelled = %d", cancelled)
	}
	// Shrink unwinds layers; everything returns on release.
	slot.Shrink(700)
	if m.Global().Free() != 800 {
		t.Fatalf("global after shrink = %d", m.Global().Free())
	}
	slot.Release()
	if g.GroupSharedFree() != 100 {
		t.Fatalf("group shared after release = %d", g.GroupSharedFree())
	}
}

func TestAdmissionConcurrency(t *testing.T) {
	m := testManager(t)
	g, err := m.CreateGroup(catalog.ResourceGroupDef{
		Name: "g", Concurrency: 2, MemoryLimit: 10, MemSharedQuota: 20, CPURateLimit: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	s1, _ := g.Admit(context.Background())
	s2, _ := g.Admit(context.Background())
	// Third admit must block until a slot frees.
	done := make(chan *Slot, 1)
	go func() {
		s, _ := g.Admit(context.Background())
		done <- s
	}()
	select {
	case <-done:
		t.Fatal("third query admitted beyond CONCURRENCY")
	case <-time.After(20 * time.Millisecond):
	}
	s1.Release()
	select {
	case s3 := <-done:
		s3.Release()
	case <-time.After(time.Second):
		t.Fatal("waiter not admitted after release")
	}
	s2.Release()
	// Admit with cancelled context fails.
	ctx, cancel := context.WithCancel(context.Background())
	a, _ := g.Admit(context.Background())
	b, _ := g.Admit(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, err := g.Admit(ctx)
		errCh <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	if err := <-errCh; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled admit: %v", err)
	}
	a.Release()
	b.Release()
}

func TestSlotReleaseIdempotent(t *testing.T) {
	m := testManager(t)
	g, _ := m.CreateGroup(catalog.ResourceGroupDef{
		Name: "g", Concurrency: 1, MemoryLimit: 10, MemSharedQuota: 0, CPURateLimit: 10,
	})
	s, _ := g.Admit(context.Background())
	_ = s.Grow(5)
	s.Release()
	s.Release() // second release must not double-free the admission slot
	s2, err := g.Admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	s2.Release()
}

func TestParseCPUSet(t *testing.T) {
	cases := map[string]int{
		"0-3":     4,
		"16-31":   16,
		"5":       1,
		"0-1,4-5": 4,
		"0, 2, 4": 3,
	}
	for spec, want := range cases {
		got, err := parseCPUSetCount(spec)
		if err != nil || got != want {
			t.Errorf("parseCPUSetCount(%q) = %d, %v; want %d", spec, got, err, want)
		}
	}
	for _, bad := range []string{"", "x", "3-1", "1-x"} {
		if _, err := parseCPUSetCount(bad); err == nil {
			t.Errorf("parseCPUSetCount(%q) should fail", bad)
		}
	}
}

func TestCPUSetDedicatedCoresIsolateFromSharedLoad(t *testing.T) {
	cpu := NewCPUSim(4)
	cpu.SetCPUSet("oltp", 2)
	cpu.SetShares("olap", 90)
	ctx := context.Background()

	// Saturate the shared pool (2 remaining cores) with long OLAP quanta.
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				_ = cpu.Run(ctx, "olap", 5*time.Millisecond)
			}
		}()
	}
	time.Sleep(10 * time.Millisecond)
	// OLTP work on dedicated cores must not queue behind OLAP.
	t0 := time.Now()
	for i := 0; i < 20; i++ {
		if err := cpu.Run(ctx, "oltp", 100*time.Microsecond); err != nil {
			t.Fatal(err)
		}
	}
	oltpTime := time.Since(t0)
	close(stop)
	wg.Wait()
	// 20 × 100µs of work on 2 dedicated cores should take ~2ms sequential;
	// allow generous slack but fail if it queued behind 5ms OLAP quanta.
	if oltpTime > 60*time.Millisecond {
		t.Fatalf("OLTP on dedicated cores took %v — not isolated", oltpTime)
	}
}

func TestSharedPoolHeadOfLineBlocking(t *testing.T) {
	// One core, shared: a long OLAP quantum delays the OLTP request — the
	// interference resource groups with CPUSET remove.
	cpu := NewCPUSim(1)
	cpu.SetShares("olap", 50)
	cpu.SetShares("oltp", 50)
	ctx := context.Background()
	started := make(chan struct{})
	go func() {
		close(started)
		_ = cpu.Run(ctx, "olap", 30*time.Millisecond)
	}()
	<-started
	time.Sleep(2 * time.Millisecond) // let OLAP occupy the core
	t0 := time.Now()
	if err := cpu.Run(ctx, "oltp", 100*time.Microsecond); err != nil {
		t.Fatal(err)
	}
	if wait := time.Since(t0); wait < 10*time.Millisecond {
		t.Fatalf("expected head-of-line blocking, waited only %v", wait)
	}
}

func TestCPURunCancelledWhileQueued(t *testing.T) {
	cpu := NewCPUSim(1)
	cpu.SetShares("g", 50)
	bg := context.Background()
	go cpu.Run(bg, "g", 50*time.Millisecond) //nolint:errcheck
	time.Sleep(2 * time.Millisecond)
	ctx, cancel := context.WithTimeout(bg, 5*time.Millisecond)
	defer cancel()
	if err := cpu.Run(ctx, "g", time.Millisecond); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v", err)
	}
}

func TestDropGroupReturnsResources(t *testing.T) {
	m := testManager(t)
	_, err := m.CreateGroup(catalog.ResourceGroupDef{
		Name: "g", Concurrency: 1, MemoryLimit: 50, MemSharedQuota: 0, CPUSet: "0-1",
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Global().Free() != 500 {
		t.Fatalf("global = %d", m.Global().Free())
	}
	if err := m.DropGroup("g"); err != nil {
		t.Fatal(err)
	}
	if m.Global().Free() != 1000 {
		t.Fatalf("global after drop = %d", m.Global().Free())
	}
	if err := m.DropGroup("g"); err == nil {
		t.Fatal("double drop")
	}
	if _, ok := m.Group("g"); ok {
		t.Fatal("group still registered")
	}
}

func TestDuplicateGroupRejected(t *testing.T) {
	m := testManager(t)
	def := catalog.ResourceGroupDef{Name: "g", Concurrency: 1, MemoryLimit: 10, CPURateLimit: 10}
	if _, err := m.CreateGroup(def); err != nil {
		t.Fatal(err)
	}
	if _, err := m.CreateGroup(def); err == nil {
		t.Fatal("duplicate accepted")
	}
}

func TestMemoryHighWaterAndSpillBudget(t *testing.T) {
	m := testManager(t)
	g, err := m.CreateGroup(catalog.ResourceGroupDef{
		Name: "g", Concurrency: 2, MemoryLimit: 40, MemSharedQuota: 50, MemSpillRatio: 25,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Group memory 400, shared 200, slot quota 100. Group ratio 25 → budget
	// 25; a session SET overrides it; with neither, the default applies.
	if b := g.SpillBudget(-1, 20); b != 25 {
		t.Fatalf("group-ratio budget = %d, want 25", b)
	}
	if b := g.SpillBudget(50, 20); b != 50 {
		t.Fatalf("session-ratio budget = %d, want 50", b)
	}
	if b := g.SpillBudget(0, 20); b != 0 {
		t.Fatalf("SET memory_spill_ratio 0 should disable spilling, got %d", b)
	}
	noRatio, err := m.CreateGroup(catalog.ResourceGroupDef{
		Name: "plain", Concurrency: 1, MemoryLimit: 10, MemSharedQuota: 0,
	})
	if err != nil {
		t.Fatal(err)
	}
	if b := noRatio.SpillBudget(-1, 20); b != 100*20/100 {
		t.Fatalf("default-ratio budget = %d, want 20", b)
	}

	s, err := g.Admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Grow(80); err != nil {
		t.Fatal(err)
	}
	if err := s.Grow(40); err != nil { // spills into group shared
		t.Fatal(err)
	}
	s.Shrink(100)
	if got := s.MemoryUsed(); got != 20 {
		t.Fatalf("used = %d", got)
	}
	if got := s.MemoryHighWater(); got != 120 {
		t.Fatalf("high water = %d, want 120", got)
	}
	// Per-statement rebase: the next statement's peak starts from current
	// usage, not the slot's lifetime maximum.
	s.ResetMemoryHighWater()
	if got := s.MemoryHighWater(); got != 20 {
		t.Fatalf("high water after reset = %d, want 20", got)
	}
	if err := s.Grow(50); err != nil {
		t.Fatal(err)
	}
	if got := s.MemoryHighWater(); got != 70 {
		t.Fatalf("high water after reset+grow = %d, want 70", got)
	}
	s.Release()
}
