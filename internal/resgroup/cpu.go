// Package resgroup implements Greenplum's Resource Groups (paper §6):
// admission control (CONCURRENCY), CPU isolation via either proportional
// shares (CPU_RATE_LIMIT, soft — modeled on cgroup cpu.shares) or dedicated
// cores (CPUSET, hard — modeled on cgroup cpuset.cpus), and the
// three-layer Vmemtracker memory model (slot → group shared → global
// shared) with query cancellation when all layers are exhausted.
//
// The CPU substrate is a simulated multi-core machine: executing work means
// occupying one of N core slots for a quantum. CPUSET groups own dedicated
// core slots that nobody else can use; share-based groups compete for the
// shared pool under stride scheduling (lowest virtual time runs first,
// virtual time advances inversely to the group's share). Head-of-line
// blocking by long analytical quanta on shared cores — the effect resource
// groups exist to prevent — emerges naturally.
package resgroup

import (
	"container/heap"
	"context"
	"sync"
	"time"
)

// CPUSim is the simulated machine: TotalCores core slots, each quantum of
// work occupying one slot for its duration.
type CPUSim struct {
	mu         sync.Mutex
	totalCores int
	// sharedFree is the number of idle cores in the shared pool.
	sharedFree int
	sharedCap  int
	waitq      reqHeap
	seq        uint64
	// dedicated pools: group -> free-core count and capacity.
	dedFree map[string]int
	dedCap  map[string]int
	// vtime advances per group as it consumes shared CPU.
	vtime  map[string]float64
	shares map[string]float64
}

// cpuReq is one queued request for a shared core.
type cpuReq struct {
	group string
	vkey  float64 // group vtime at enqueue, for stride ordering
	seq   uint64
	grant chan struct{}
	index int
}

type reqHeap []*cpuReq

func (h reqHeap) Len() int { return len(h) }
func (h reqHeap) Less(i, j int) bool {
	if h[i].vkey != h[j].vkey {
		return h[i].vkey < h[j].vkey
	}
	return h[i].seq < h[j].seq
}
func (h reqHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *reqHeap) Push(x any) {
	r := x.(*cpuReq)
	r.index = len(*h)
	*h = append(*h, r)
}
func (h *reqHeap) Pop() any {
	old := *h
	n := len(old)
	r := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return r
}

// NewCPUSim builds a machine with totalCores cores, all initially shared.
func NewCPUSim(totalCores int) *CPUSim {
	if totalCores < 1 {
		totalCores = 1
	}
	return &CPUSim{
		totalCores: totalCores,
		sharedFree: totalCores,
		sharedCap:  totalCores,
		dedFree:    make(map[string]int),
		dedCap:     make(map[string]int),
		vtime:      make(map[string]float64),
		shares:     make(map[string]float64),
	}
}

// TotalCores returns the machine size.
func (c *CPUSim) TotalCores() int { return c.totalCores }

// SetShares registers a share-based group: pct is CPU_RATE_LIMIT.
func (c *CPUSim) SetShares(group string, pct int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if pct < 1 {
		pct = 1
	}
	c.shares[group] = float64(pct)
	delete(c.dedCap, group)
	c.recomputeSharedLocked()
}

// SetCPUSet dedicates n cores to group, removing them from the shared pool.
func (c *CPUSim) SetCPUSet(group string, n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if n < 1 {
		n = 1
	}
	if n > c.totalCores {
		n = c.totalCores
	}
	prevCap := c.dedCap[group]
	c.dedCap[group] = n
	c.dedFree[group] += n - prevCap
	if c.dedFree[group] < 0 {
		c.dedFree[group] = 0
	}
	delete(c.shares, group)
	c.recomputeSharedLocked()
}

// RemoveGroup returns a group's dedicated cores to the shared pool.
func (c *CPUSim) RemoveGroup(group string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.dedCap, group)
	delete(c.dedFree, group)
	delete(c.shares, group)
	delete(c.vtime, group)
	c.recomputeSharedLocked()
}

func (c *CPUSim) recomputeSharedLocked() {
	ded := 0
	for _, n := range c.dedCap {
		ded += n
	}
	newCap := c.totalCores - ded
	if newCap < 0 {
		newCap = 0
	}
	c.sharedFree += newCap - c.sharedCap
	c.sharedCap = newCap
	if c.sharedFree < 0 {
		c.sharedFree = 0
	}
	c.dispatchLocked()
}

// dispatchLocked grants shared cores to the lowest-vtime waiters.
func (c *CPUSim) dispatchLocked() {
	for c.sharedFree > 0 && c.waitq.Len() > 0 {
		r := heap.Pop(&c.waitq).(*cpuReq)
		c.sharedFree--
		close(r.grant)
	}
}

// Run executes one quantum of CPU work of duration d for group. It blocks
// until a core is available (dedicated core for CPUSET groups, stride-
// scheduled shared core otherwise), holds the core for d, then releases it.
// Returns early with ctx.Err() if cancelled while queued.
func (c *CPUSim) Run(ctx context.Context, group string, d time.Duration) error {
	c.mu.Lock()
	if _, isDed := c.dedCap[group]; isDed {
		// Dedicated pool: simple counting semaphore.
		for c.dedFree[group] == 0 {
			// Busy dedicated pool: wait on a local grant channel via queue
			// reuse (vkey 0 so dedicated requests order FIFO among
			// themselves — they never mix with shared requests because
			// dispatchLocked only grants shared cores; instead we poll the
			// dedicated pool with a small wait).
			c.mu.Unlock()
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(50 * time.Microsecond):
			}
			c.mu.Lock()
		}
		c.dedFree[group]--
		c.mu.Unlock()
		sleep(d)
		c.mu.Lock()
		c.dedFree[group]++
		c.mu.Unlock()
		return nil
	}

	share := c.shares[group]
	if share == 0 {
		share = 10 // unregistered groups get a small default share
		c.shares[group] = share
	}
	if c.sharedFree > 0 && c.waitq.Len() == 0 {
		c.sharedFree--
		c.vtime[group] += float64(d) / share
		c.mu.Unlock()
	} else {
		r := &cpuReq{group: group, vkey: c.vtime[group], seq: c.seq, grant: make(chan struct{})}
		c.seq++
		heap.Push(&c.waitq, r)
		c.vtime[group] += float64(d) / share
		c.mu.Unlock()
		select {
		case <-r.grant:
		case <-ctx.Done():
			c.mu.Lock()
			select {
			case <-r.grant:
				// Granted concurrently; give the core back.
				c.sharedFree++
				c.dispatchLocked()
			default:
				if r.index >= 0 && r.index < c.waitq.Len() && c.waitq[r.index] == r {
					heap.Remove(&c.waitq, r.index)
				}
			}
			c.mu.Unlock()
			return ctx.Err()
		}
	}
	sleep(d)
	c.mu.Lock()
	c.sharedFree++
	c.dispatchLocked()
	c.mu.Unlock()
	return nil
}

// sleep is indirected for tests.
var sleep = time.Sleep
