package resgroup

import (
	"fmt"
	"sync"
)

// ErrOutOfMemory is returned when a query's growth request cannot be served
// by any of the three memory layers; the resource-group policy is to cancel
// the query (paper §6).
type ErrOutOfMemory struct {
	Group     string
	Requested int64
}

func (e *ErrOutOfMemory) Error() string {
	return fmt.Sprintf("resgroup: group %q out of memory (requested %d bytes): query cancelled", e.Group, e.Requested)
}

// Vmem is a group's memory state under the Vmemtracker model. Greenplum
// enforces three layers (paper §6):
//
//  1. slot memory — (group non-shared memory) / concurrency, per query;
//  2. group shared memory — MEMORY_SHARED_QUOTA percent of the group;
//  3. global shared memory — the cluster-wide last resort.
type Vmem struct {
	slotQuota      int64 // per-query private budget
	groupShared    int64 // remaining group-shared bytes
	groupSharedCap int64
}

// GlobalVmem is the cluster's global shared memory pool.
type GlobalVmem struct {
	mu   sync.Mutex
	free int64
	cap  int64
}

// NewGlobalVmem returns a global pool of capacity bytes.
func NewGlobalVmem(capacity int64) *GlobalVmem {
	return &GlobalVmem{free: capacity, cap: capacity}
}

// tryTake reserves n bytes from the global pool.
func (g *GlobalVmem) tryTake(n int64) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.free < n {
		return false
	}
	g.free -= n
	return true
}

func (g *GlobalVmem) give(n int64) {
	g.mu.Lock()
	g.free += n
	if g.free > g.cap {
		g.free = g.cap
	}
	g.mu.Unlock()
}

// Free returns the remaining global shared bytes.
func (g *GlobalVmem) Free() int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.free
}

// Reserve takes n bytes out of the global pool for a long-lived consumer
// outside any group — e.g. the segments' decoded-block caches, whose capacity
// must come out of the same budget queries allocate from. It returns false
// (reserving nothing) when the pool cannot cover the request.
func (g *GlobalVmem) Reserve(n int64) bool { return g.tryTake(n) }

// Release returns bytes taken with Reserve.
func (g *GlobalVmem) Release(n int64) { g.give(n) }

// memAccount tracks one running query's usage across the three layers.
type memAccount struct {
	mu         sync.Mutex
	group      *Group
	slotUsed   int64
	groupUsed  int64 // taken from group shared
	globalUsed int64 // taken from global shared
	hwm        int64 // high-water mark of total usage
}

// Grow charges n more bytes to the query, spilling from slot quota to group
// shared to global shared; it returns *ErrOutOfMemory when all three layers
// are exhausted (the query must then be cancelled).
func (a *memAccount) Grow(n int64) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	g := a.group
	// Layer 1: slot quota.
	if a.slotUsed+n <= g.vmem.slotQuota {
		a.slotUsed += n
		a.noteHighWater()
		return nil
	}
	fromSlot := g.vmem.slotQuota - a.slotUsed
	if fromSlot < 0 {
		fromSlot = 0
	}
	rest := n - fromSlot
	// Layer 2: group shared.
	g.mu.Lock()
	if g.vmem.groupShared >= rest {
		g.vmem.groupShared -= rest
		g.mu.Unlock()
		a.slotUsed += fromSlot
		a.groupUsed += rest
		a.noteHighWater()
		return nil
	}
	fromGroup := g.vmem.groupShared
	g.vmem.groupShared = 0
	g.mu.Unlock()
	rest -= fromGroup
	// Layer 3: global shared.
	if g.global != nil && g.global.tryTake(rest) {
		a.slotUsed += fromSlot
		a.groupUsed += fromGroup
		a.globalUsed += rest
		a.noteHighWater()
		return nil
	}
	// Exhausted: roll back the partial group-shared take and cancel.
	g.mu.Lock()
	g.vmem.groupShared += fromGroup
	g.mu.Unlock()
	return &ErrOutOfMemory{Group: g.def.Name, Requested: n}
}

// Shrink returns n bytes, unwinding layers in reverse order of acquisition.
func (a *memAccount) Shrink(n int64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	g := a.group
	fromGlobal := min64(n, a.globalUsed)
	a.globalUsed -= fromGlobal
	n -= fromGlobal
	if fromGlobal > 0 && g.global != nil {
		g.global.give(fromGlobal)
	}
	fromGroup := min64(n, a.groupUsed)
	a.groupUsed -= fromGroup
	n -= fromGroup
	if fromGroup > 0 {
		g.mu.Lock()
		g.vmem.groupShared += fromGroup
		if g.vmem.groupShared > g.vmem.groupSharedCap {
			g.vmem.groupShared = g.vmem.groupSharedCap
		}
		g.mu.Unlock()
	}
	a.slotUsed -= min64(n, a.slotUsed)
}

// releaseAll frees everything the account holds.
func (a *memAccount) releaseAll() {
	a.mu.Lock()
	total := a.slotUsed + a.groupUsed + a.globalUsed
	a.mu.Unlock()
	if total > 0 {
		a.Shrink(total)
	}
}

// Used returns the account's current total bytes.
func (a *memAccount) Used() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.slotUsed + a.groupUsed + a.globalUsed
}

// noteHighWater records the current total as the high-water mark if it is a
// new maximum. Callers hold a.mu.
func (a *memAccount) noteHighWater() {
	if t := a.slotUsed + a.groupUsed + a.globalUsed; t > a.hwm {
		a.hwm = t
	}
}

// HighWater returns the account's peak total bytes.
func (a *memAccount) HighWater() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.hwm
}

// resetHighWater rebases the peak to the current usage. The executor calls
// it at statement start so a multi-statement transaction attributes each
// statement its own peak instead of the slot's lifetime maximum.
func (a *memAccount) resetHighWater() {
	a.mu.Lock()
	a.hwm = a.slotUsed + a.groupUsed + a.globalUsed
	a.mu.Unlock()
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
