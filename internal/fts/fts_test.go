package fts

import (
	"errors"
	"sync"
	"testing"
	"time"
)

type fakeTarget struct {
	mu       sync.Mutex
	down     []bool
	mirrors  []bool
	promoted []int
	failNext bool
}

func (f *fakeTarget) SegmentCount() int { return len(f.down) }

func (f *fakeTarget) ProbePrimary(i int) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.down[i] {
		return errors.New("down")
	}
	return nil
}

func (f *fakeTarget) HasMirror(i int) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.mirrors[i]
}

func (f *fakeTarget) Promote(i int) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.failNext {
		return errors.New("promotion failed")
	}
	f.promoted = append(f.promoted, i)
	f.down[i] = false
	f.mirrors[i] = false
	return nil
}

func TestProbePromotesDeadPrimary(t *testing.T) {
	ft := &fakeTarget{down: []bool{false, true, false}, mirrors: []bool{true, true, true}}
	d := NewDaemon(ft, time.Hour) // driven manually
	d.ProbeAll()
	if len(ft.promoted) != 1 || ft.promoted[0] != 1 {
		t.Fatalf("promoted %v", ft.promoted)
	}
	st := d.States()
	if st[0] != StateUp || st[1] != StateMirrorless || st[2] != StateUp {
		t.Fatalf("states %v", st)
	}
	probes, failures, promotions := d.Stats()
	if probes != 3 || failures != 1 || promotions != 1 {
		t.Fatalf("stats %d %d %d", probes, failures, promotions)
	}
}

func TestDeadPrimaryWithoutMirrorGoesDown(t *testing.T) {
	ft := &fakeTarget{down: []bool{true}, mirrors: []bool{false}}
	d := NewDaemon(ft, time.Hour)
	d.ProbeAll()
	if st := d.States(); st[0] != StateDown {
		t.Fatalf("state %v", st[0])
	}
	if len(ft.promoted) != 0 {
		t.Fatal("promoted a mirrorless segment")
	}
}

func TestFailedPromotionGoesDown(t *testing.T) {
	ft := &fakeTarget{down: []bool{true}, mirrors: []bool{true}, failNext: true}
	d := NewDaemon(ft, time.Hour)
	d.ProbeAll()
	if st := d.States(); st[0] != StateDown {
		t.Fatalf("state %v", st[0])
	}
}

func TestDaemonLoopAndPoke(t *testing.T) {
	ft := &fakeTarget{down: []bool{false, false}, mirrors: []bool{true, true}}
	d := NewDaemon(ft, 5*time.Millisecond)
	d.Start()
	defer d.Stop()
	ft.mu.Lock()
	ft.down[0] = true
	ft.mu.Unlock()
	d.Poke()
	deadline := time.Now().Add(2 * time.Second)
	for {
		ft.mu.Lock()
		n := len(ft.promoted)
		ft.mu.Unlock()
		if n == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("daemon never promoted")
		}
		time.Sleep(time.Millisecond)
	}
}
