// Package fts implements the fault-tolerance service: the coordinator-side
// daemon that periodically probes every primary segment and, when a probe
// fails and the segment has a mirror standby, drives the mirror's promotion
// to primary. It mirrors Greenplum's FTS process: the daemon is the only
// component allowed to declare a primary dead, so dispatch never has to
// make that call — it just waits for the topology to change.
//
// The per-segment state machine:
//
//	Up ──probe fails──▶ Promoting ──promotion ok──▶ Mirrorless
//	 │                        │
//	 │                        └─promotion fails──▶ Down
//	 └─probe fails, no mirror─────────────────────▶ Down
//
//	Mirrorless ──operator rebuilds a mirror (Recover)──▶ Up
//	Down ──────operator revives the primary (Recover)──▶ Up / Mirrorless
package fts

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// State is one segment's health as the daemon sees it.
type State int

// Segment states.
const (
	// StateUp: primary answering probes, mirror standby attached.
	StateUp State = iota
	// StateMirrorless: primary answering probes but without a standby —
	// typically the state right after a promotion, until Recover rebuilds
	// redundancy.
	StateMirrorless
	// StatePromoting: primary declared dead, mirror promotion in progress.
	StatePromoting
	// StateDown: primary dead and no mirror to promote; the segment's data
	// is unavailable until an operator intervenes.
	StateDown
)

func (s State) String() string {
	switch s {
	case StateUp:
		return "up"
	case StateMirrorless:
		return "up (no mirror)"
	case StatePromoting:
		return "promoting"
	case StateDown:
		return "down"
	default:
		return "unknown"
	}
}

// Target is the cluster surface the daemon drives.
type Target interface {
	// SegmentCount returns the number of primaries to probe.
	SegmentCount() int
	// ProbePrimary returns nil when segment i's primary answers.
	ProbePrimary(i int) error
	// HasMirror reports whether segment i has a live mirror standby.
	HasMirror(i int) bool
	// Promote fails segment i over to its mirror.
	Promote(i int) error
}

// Daemon is the probe loop.
type Daemon struct {
	target   Target
	interval time.Duration

	mu     sync.Mutex
	states []State

	probes     atomic.Int64
	failures   atomic.Int64
	promotions atomic.Int64

	stop chan struct{}
	poke chan struct{}
	wg   sync.WaitGroup
}

// NewDaemon returns a daemon probing target every interval.
func NewDaemon(target Target, interval time.Duration) *Daemon {
	if interval <= 0 {
		interval = 25 * time.Millisecond
	}
	return &Daemon{
		target:   target,
		interval: interval,
		states:   make([]State, target.SegmentCount()),
		stop:     make(chan struct{}),
		poke:     make(chan struct{}, 1),
	}
}

// Start launches the probe loop. Each cycle's wait is the configured
// interval ±20% (per-daemon PRNG): with one daemon per coordinator this
// keeps probe bursts from many clusters (or a paused-then-resumed process's
// backlog of ticks) from synchronizing into a thundering herd, and the
// timer-per-cycle shape means a missed cycle is skipped rather than queued.
func (d *Daemon) Start() {
	d.wg.Add(1)
	go func() {
		defer d.wg.Done()
		rng := rand.New(rand.NewSource(time.Now().UnixNano()))
		t := time.NewTimer(d.jitter(rng))
		defer t.Stop()
		for {
			select {
			case <-d.stop:
				return
			case <-t.C:
			case <-d.poke:
			}
			d.ProbeAll()
			if !t.Stop() {
				select {
				case <-t.C:
				default:
				}
			}
			t.Reset(d.jitter(rng))
		}
	}()
}

// jitter returns one probe cycle's wait: interval scaled by a uniform factor
// in [0.8, 1.2).
func (d *Daemon) jitter(rng *rand.Rand) time.Duration {
	f := 0.8 + 0.4*rng.Float64()
	return time.Duration(float64(d.interval) * f)
}

// Stop terminates the probe loop.
func (d *Daemon) Stop() {
	close(d.stop)
	d.wg.Wait()
}

// Poke requests an immediate probe pass (used right after an explicit
// segment kill so failover latency is probe-bound, not interval-bound).
func (d *Daemon) Poke() {
	select {
	case d.poke <- struct{}{}:
	default:
	}
}

// ProbeAll runs one synchronous probe pass over every segment, promoting
// mirrors of dead primaries.
func (d *Daemon) ProbeAll() {
	for i := 0; i < d.target.SegmentCount(); i++ {
		d.probes.Add(1)
		err := d.target.ProbePrimary(i)
		if err == nil {
			if d.target.HasMirror(i) {
				d.setState(i, StateUp)
			} else {
				d.setState(i, StateMirrorless)
			}
			continue
		}
		d.failures.Add(1)
		if !d.target.HasMirror(i) {
			d.setState(i, StateDown)
			continue
		}
		d.setState(i, StatePromoting)
		if perr := d.target.Promote(i); perr != nil {
			d.setState(i, StateDown)
			continue
		}
		d.promotions.Add(1)
		d.setState(i, StateMirrorless)
	}
}

func (d *Daemon) setState(i int, s State) {
	d.mu.Lock()
	// Online expansion registers segments after the daemon booted; newly
	// seen ids grow the state vector (new segments start Up).
	for i >= len(d.states) {
		d.states = append(d.states, StateUp)
	}
	d.states[i] = s
	d.mu.Unlock()
}

// States snapshots the per-segment states.
func (d *Daemon) States() []State {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]State, len(d.states))
	copy(out, d.states)
	return out
}

// Stats returns cumulative probe-loop counters.
func (d *Daemon) Stats() (probes, failures, promotions int64) {
	return d.probes.Load(), d.failures.Load(), d.promotions.Load()
}
