package core

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"repro/internal/cluster"
)

func explainText(t *testing.T, s *Session, q string) string {
	t.Helper()
	res := mustExec(t, s, "EXPLAIN "+q)
	var b strings.Builder
	for _, r := range res.Rows {
		b.WriteString(r[0].String())
		b.WriteByte('\n')
	}
	return b.String()
}

func bulkInsert(t *testing.T, s *Session, table string, n, base int, mk func(i int) string) {
	t.Helper()
	ctx := context.Background()
	const chunk = 500
	for off := 0; off < n; off += chunk {
		end := off + chunk
		if end > n {
			end = n
		}
		var sb strings.Builder
		sb.WriteString("INSERT INTO " + table + " VALUES ")
		for i := off; i < end; i++ {
			if i > off {
				sb.WriteByte(',')
			}
			sb.WriteString(mk(base + i))
		}
		if _, err := s.Exec(ctx, sb.String()); err != nil {
			t.Fatalf("bulk insert into %s: %v", table, err)
		}
	}
}

// TestPlannerUsesRealTableStats checks the OLAP broadcast-vs-redistribute
// decision is driven by actual storage row counts (via the cluster's stats
// cache), not the old hard-coded default estimate: a small misaligned inner
// side is broadcast, and after the table grows past the threshold a fresh
// plan redistributes instead.
func TestPlannerUsesRealTableStats(t *testing.T) {
	_, s := newTestEngine(t, 2)

	mustExec(t, s, "CREATE TABLE big (a int, b int) DISTRIBUTED BY (a)")
	// dim's distribution key (v) differs from the join key (k), so the join
	// sides are misaligned and the planner must move data.
	mustExec(t, s, "CREATE TABLE dim (k int, v int) DISTRIBUTED BY (v)")
	bulkInsert(t, s, "big", 200, 0, func(i int) string { return fmt.Sprintf("(%d,%d)", i, i%50) })
	bulkInsert(t, s, "dim", 100, 0, func(i int) string { return fmt.Sprintf("(%d,%d)", i, i*3) })

	if err := s.SetOptimizer("orca"); err != nil {
		t.Fatal(err)
	}
	// This test pins the legacy threshold heuristic; with the cost-based
	// optimizer on, join reordering may flip the build side and broadcast
	// whichever input is smaller (covered by the costopt tests).
	mustExec(t, s, "SET enable_costopt = off")
	q := "SELECT big.a, dim.v FROM big JOIN dim ON big.b = dim.k"
	pl := explainText(t, s, q)
	if !strings.Contains(pl, "Broadcast Motion") {
		t.Fatalf("small inner side (100 rows) should be broadcast:\n%s", pl)
	}

	// Grow dim past the broadcast threshold (2000); the write invalidates
	// the stats cache, so the next plan sees the real count.
	bulkInsert(t, s, "dim", 2500, 1000, func(i int) string { return fmt.Sprintf("(%d,%d)", i, i*3) })
	pl = explainText(t, s, q)
	if strings.Contains(pl, "Broadcast Motion") {
		t.Fatalf("large inner side (2600 rows) should not be broadcast:\n%s", pl)
	}
	if !strings.Contains(pl, "Redistribute Motion") {
		t.Fatalf("misaligned large join should redistribute:\n%s", pl)
	}
}

// TestBatchAndRowModesAgree runs the same analytical query under the
// vectorized executor and the row-at-a-time shim and requires identical
// results end to end (scan → motion → agg through real segments).
func TestBatchAndRowModesAgree(t *testing.T) {
	run := func(rowMode bool) [][]string {
		cfg := cluster.GPDB6(3)
		cfg.RowAtATime = rowMode
		cfg.ExecBatchSize = 64
		e := NewEngine(cfg)
		defer e.Close()
		s, err := e.NewSession("")
		if err != nil {
			t.Fatal(err)
		}
		mustExec(t, s, "CREATE TABLE f (g int, v int, w int) WITH (appendonly=true, orientation=column) DISTRIBUTED BY (g)")
		bulkInsert(t, s, "f", 3000, 0, func(i int) string { return fmt.Sprintf("(%d,%d,%d)", i%37, i, i%5) })
		res := mustExec(t, s, "SELECT g, count(*), sum(v), min(v), max(v), avg(w) FROM f WHERE v % 2 = 0 GROUP BY g ORDER BY g")
		var out [][]string
		for _, r := range res.Rows {
			var row []string
			for _, d := range r {
				row = append(row, d.String())
			}
			out = append(out, row)
		}
		return out
	}
	batch := run(false)
	row := run(true)
	if len(batch) == 0 || len(batch) != len(row) {
		t.Fatalf("result sizes differ: batch=%d row=%d", len(batch), len(row))
	}
	for i := range batch {
		for j := range batch[i] {
			if batch[i][j] != row[i][j] {
				t.Fatalf("row %d col %d: batch=%s row=%s", i, j, batch[i][j], row[i][j])
			}
		}
	}
}
