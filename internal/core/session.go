package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/catalog"
	"repro/internal/cluster"
	"repro/internal/fault"
	"repro/internal/lockmgr"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/resgroup"
	"repro/internal/sql"
	"repro/internal/types"
)

// ErrTxnAborted is returned for statements issued inside a failed explicit
// transaction before ROLLBACK.
var ErrTxnAborted = errors.New("core: current transaction is aborted, commands ignored until end of transaction block")

// Session is one client connection. Sessions are not safe for concurrent
// use; open one per worker goroutine.
type Session struct {
	engine *Engine
	role   *catalog.Role

	optimizer plan.Optimizer
	settings  map[string]string

	// Transaction state.
	txn      *cluster.LiveTxn
	explicit bool
	failed   bool

	// Resource-group integration (enabled via UseResourceGroup).
	useRG    bool
	slot     *resgroup.Slot
	stmtCPU  time.Duration // CPU charged once per statement
	batchCPU time.Duration // CPU charged per executor row batch

	// sess is this session's gp_stat_activity entry.
	sess *obs.SessionInfo
	// cur is the in-flight statement's observability state; nil while idle
	// or when query recording is disabled.
	cur *stmtObs
	// lastParse is the time the preceding Exec/Prepare spent in the parser
	// (0 on a statement-cache hit); it becomes the trace's parse span.
	lastParse time.Duration
	// lastSQL is the raw text the client sent to Exec — what the activity
	// views display (the cache's normalized form is the fallback).
	lastSQL string
}

// stmtObs carries one statement's observability window: the query id, the
// distributed trace (under SET trace_queries), and the counters folded into
// the gp_stat_queries record when the statement finishes.
type stmtObs struct {
	qid     uint64
	sql     string
	start   time.Time
	trace   *obs.Trace
	root    obs.ActiveSpan
	scan    cluster.ScanCounters
	spill   cluster.SpillCounters
	rows    int64
	rowsSet bool
}

// setRows overrides the record's row count (EXPLAIN ANALYZE result rows are
// plan text, not query output, so handlers report the real count here).
func (o *stmtObs) setRows(n int64) {
	if o != nil {
		o.rows, o.rowsSet = n, true
	}
}

// NewSession opens a session for the given role (empty = gpadmin).
func (e *Engine) NewSession(roleName string) (*Session, error) {
	if roleName == "" {
		roleName = "gpadmin"
	}
	r, err := e.cluster.Catalog().Role(roleName)
	if err != nil {
		return nil, err
	}
	return &Session{
		engine:   e,
		role:     r,
		settings: make(map[string]string),
		sess:     e.activity.Register(r.Name),
	}, nil
}

// UseResourceGroup toggles resource-group enforcement for this session's
// statements, with the given per-statement and per-row-batch CPU costs.
func (s *Session) UseResourceGroup(enabled bool, stmtCPU, batchCPU time.Duration) {
	s.useRG = enabled
	s.stmtCPU = stmtCPU
	s.batchCPU = batchCPU
}

// SetOptimizer selects the planner ("postgres" = OLTP, "orca" = OLAP).
func (s *Session) SetOptimizer(name string) error {
	switch strings.ToLower(name) {
	case "postgres", "oltp", "off":
		s.optimizer = plan.OptimizerOLTP
	case "orca", "olap", "on":
		s.optimizer = plan.OptimizerOLAP
	default:
		return fmt.Errorf("core: unknown optimizer %q", name)
	}
	return nil
}

// InTxn reports whether an explicit transaction block is open.
func (s *Session) InTxn() bool { return s.txn != nil && s.explicit }

// Exec parses and executes a single statement with optional $N parameters.
// The parse goes through the engine's shared statement cache: repeated
// statement texts skip the parser entirely, and param-free SELECTs reuse
// cached plans while the catalog/stats epoch and planner settings match.
func (s *Session) Exec(ctx context.Context, sqlText string, params ...types.Datum) (*Result, error) {
	t0 := time.Now()
	st, entry, err := s.engine.stmts.parse(sqlText)
	if err != nil {
		return nil, err
	}
	s.lastParse = time.Since(t0)
	s.lastSQL = sqlText
	return s.execParsed(ctx, st, entry, params...)
}

// Close tears the session down: it rolls back any open transaction and
// releases the resource-group slot. The network session layer calls it on
// every disconnect — including abrupt socket closes mid-transaction — so a
// dead connection can never pin locks or admission slots. Idempotent.
func (s *Session) Close() {
	s.failed = false
	s.abortCurrent()
	s.engine.activity.Unregister(s.sess)
}

// Prepared is a statement parsed once and executed many times. The parse
// goes through the engine's shared statement cache, so any number of
// sessions preparing the same text share one AST — and param-free SELECT
// executions share cached plans.
type Prepared struct {
	// SQL is the original statement text.
	SQL   string
	stmt  sql.Statement
	entry *stmtEntry
}

// Prepare parses a statement for repeated execution.
func (s *Session) Prepare(sqlText string) (*Prepared, error) {
	st, entry, err := s.engine.stmts.parse(sqlText)
	if err != nil {
		return nil, err
	}
	return &Prepared{SQL: sqlText, stmt: st, entry: entry}, nil
}

// ExecPrepared executes a prepared statement with the given parameters.
func (s *Session) ExecPrepared(ctx context.Context, p *Prepared, params ...types.Datum) (*Result, error) {
	return s.execParsed(ctx, p.stmt, p.entry, params...)
}

// TxnStatus reports the session's transaction state as the wire protocol's
// ready-status byte: 'I' idle, 'T' inside an open block, 'F' failed block.
func (s *Session) TxnStatus() byte {
	switch {
	case s.failed:
		return 'F'
	case s.InTxn():
		return 'T'
	default:
		return 'I'
	}
}

// ExecScript runs a semicolon-separated script, stopping at the first error.
func (s *Session) ExecScript(ctx context.Context, script string) error {
	stmts, err := sql.ParseAll(script)
	if err != nil {
		return err
	}
	for _, st := range stmts {
		if _, err := s.ExecParsed(ctx, st); err != nil {
			return fmt.Errorf("core: executing %q: %w", st.String(), err)
		}
	}
	return nil
}

// ExecParsed executes an already-parsed statement (no statement-cache
// participation; Exec is the cached path).
func (s *Session) ExecParsed(ctx context.Context, st sql.Statement, params ...types.Datum) (*Result, error) {
	return s.execParsed(ctx, st, nil, params...)
}

// execParsed executes a statement, with entry carrying the shared
// statement-cache slot when the text came through Exec.
func (s *Session) execParsed(ctx context.Context, st sql.Statement, entry *stmtEntry, params ...types.Datum) (*Result, error) {
	parseDur := s.lastParse
	s.lastParse = 0
	rawSQL := s.lastSQL
	s.lastSQL = ""
	// Transaction control is always allowed.
	switch st.(type) {
	case *sql.BeginStmt:
		return s.execBegin(ctx)
	case *sql.CommitStmt:
		return s.execCommit()
	case *sql.RollbackStmt:
		return s.execRollback()
	}
	if s.failed {
		return nil, ErrTxnAborted
	}

	// statement_timeout bounds one statement's wall time (including the
	// implicit commit); 0 = no limit.
	if d := s.statementTimeout(); d > 0 {
		tctx, cancel := context.WithTimeout(ctx, d)
		defer cancel()
		ctx = tctx
	}

	ob := s.beginObserve(st, entry, rawSQL, parseDur)
	implicit := s.txn == nil
	if implicit {
		if err := s.beginTxn(ctx, false); err != nil {
			s.finishObserve(ob, nil, err)
			return nil, err
		}
	}
	res, err := s.execStatement(ctx, st, entry, params)
	if err != nil {
		// Statement failure aborts the transaction (deadlock victims and
		// cancelled queries must release their locks to unblock others).
		s.abortCurrent()
		if !implicit {
			// Explicit block: subsequent statements fail until ROLLBACK.
			s.failed = true
			s.explicit = true
		}
		s.finishObserve(ob, nil, err)
		return nil, err
	}
	if implicit {
		if _, cerr := s.commitCurrent(); cerr != nil {
			s.finishObserve(ob, nil, cerr)
			return nil, cerr
		}
	}
	s.finishObserve(ob, res, nil)
	return res, nil
}

// beginObserve opens the statement's observability window: a query id, the
// gp_stat_activity "active" flip, and — under SET trace_queries — the
// distributed trace with its parse span. Returns nil (and does no
// per-statement work at all) while query recording is disabled; that switch
// is how the obs-overhead benchmark reconstructs the pre-observability
// baseline.
func (s *Session) beginObserve(st sql.Statement, entry *stmtEntry, rawSQL string, parseDur time.Duration) *stmtObs {
	act := s.engine.activity
	if !act.Enabled() {
		return nil
	}
	ob := &stmtObs{qid: act.NextQueryID(), start: time.Now()}
	switch {
	case rawSQL != "":
		ob.sql = rawSQL // what the client actually sent
	case entry != nil:
		ob.sql = entry.str // computed once, shared by the statement cache
	default:
		ob.sql = st.String()
	}
	s.sess.StartQuery(ob.sql)
	if s.settingBool("trace_queries", false) {
		ob.trace = obs.NewTrace(ob.qid, ob.sql)
		ob.root = ob.trace.Begin(0, "query", -1)
		if parseDur > 0 {
			ob.trace.Record(ob.root.ID(), "parse", -1, ob.start.Add(-parseDur), parseDur)
		}
	}
	s.cur = ob
	return ob
}

// finishObserve closes the window: the per-query duration histogram and
// statement/error counters, the gp_stat_queries record (slow-flagged past
// log_min_duration), and the finished trace into the trace store. All
// durations come from time.Since's monotonic reading, so wall-clock steps
// cannot skew them.
func (s *Session) finishObserve(ob *stmtObs, res *Result, err error) {
	if ob == nil {
		return
	}
	s.cur = nil
	s.sess.EndQuery()
	dur := time.Since(ob.start)
	e := s.engine
	e.qStatements.Add(1)
	e.qSeconds.Observe(dur)
	rows := ob.rows
	if !ob.rowsSet && res != nil {
		if len(res.Rows) > 0 {
			rows = int64(len(res.Rows))
		} else {
			rows = int64(res.RowsAffected)
		}
	}
	rec := obs.QueryRecord{
		QueryID:       ob.qid,
		SQL:           ob.sql,
		Start:         ob.start,
		Dur:           dur,
		Rows:          rows,
		BlocksScanned: ob.scan.BlocksScanned,
		BlocksSkipped: ob.scan.BlocksSkipped,
		SpillBytes:    ob.spill.SpillBytes,
	}
	if s.sess != nil {
		rec.Session = s.sess.ID
	}
	if err != nil {
		e.qErrors.Add(1)
		rec.Err = err.Error()
	}
	if min := s.logMinDuration(); min >= 0 && dur >= min {
		rec.Slow = true
	}
	e.activity.Record(rec)
	if ob.trace != nil {
		ob.root.End()
		e.activity.Traces().Add(ob.trace)
	}
}

// logMinDuration reads the session's log_min_duration setting (milliseconds;
// -1 or unset disables the slow-query log, 0 logs every statement).
func (s *Session) logMinDuration() time.Duration {
	v, ok := s.settings["log_min_duration"]
	if !ok {
		return -1
	}
	ms := plan.ParseLimitInt(v, -1)
	if ms < 0 {
		return -1
	}
	return time.Duration(ms) * time.Millisecond
}

func (s *Session) execBegin(ctx context.Context) (*Result, error) {
	if s.txn != nil {
		return nil, errors.New("core: there is already a transaction in progress")
	}
	s.failed = false
	if err := s.beginTxn(ctx, true); err != nil {
		return nil, err
	}
	return &Result{Tag: "BEGIN"}, nil
}

func (s *Session) execCommit() (*Result, error) {
	if s.failed {
		// COMMIT of a failed transaction is a rollback.
		s.failed = false
		s.abortCurrent()
		return &Result{Tag: "ROLLBACK"}, nil
	}
	if s.txn == nil {
		return &Result{Tag: "COMMIT"}, nil
	}
	if _, err := s.commitCurrent(); err != nil {
		return nil, err
	}
	return &Result{Tag: "COMMIT"}, nil
}

func (s *Session) execRollback() (*Result, error) {
	s.failed = false
	s.abortCurrent()
	return &Result{Tag: "ROLLBACK"}, nil
}

func (s *Session) beginTxn(ctx context.Context, explicit bool) error {
	if s.useRG && s.slot == nil {
		g, ok := s.engine.cluster.Groups().Group(s.role.ResourceGroup)
		if !ok {
			return fmt.Errorf("core: resource group %q not running", s.role.ResourceGroup)
		}
		slot, err := g.Admit(ctx)
		if err != nil {
			return err
		}
		s.slot = slot
	}
	s.txn = s.engine.cluster.BeginTxn()
	s.explicit = explicit
	return nil
}

func (s *Session) commitCurrent() (int, error) {
	t := s.txn
	s.txn = nil
	s.explicit = false
	defer s.releaseSlot()
	if t == nil {
		return 0, nil
	}
	_, err := s.engine.cluster.CommitTxn(t)
	return 0, err
}

func (s *Session) abortCurrent() {
	t := s.txn
	s.txn = nil
	s.explicit = false
	defer s.releaseSlot()
	if t != nil {
		s.engine.cluster.AbortTxn(t)
	}
}

func (s *Session) releaseSlot() {
	if s.slot != nil {
		s.slot.Release()
		s.slot = nil
	}
}

// resources builds the per-statement executor hooks.
func (s *Session) resources() *cluster.QueryResources {
	if !s.useRG || s.slot == nil {
		return nil
	}
	return &cluster.QueryResources{
		Mem: s.slot, CPU: s.slot, CPUBatchCost: s.batchCPU,
		SpillBudget: s.spillBudget(),
	}
}

// dmlResources builds a write statement's QueryResources with the trace
// attached and the coordinator execute span opened; the caller ends the
// span after dispatch returns. With tracing off this is exactly
// s.resources() plus one nil check.
func (s *Session) dmlResources() (*cluster.QueryResources, obs.ActiveSpan) {
	res := s.resources()
	ob := s.cur
	if ob == nil || ob.trace == nil {
		return res, obs.ActiveSpan{}
	}
	if res == nil {
		res = &cluster.QueryResources{}
	}
	res.Trace = ob.trace
	sp := ob.trace.Begin(ob.root.ID(), "execute", -1)
	res.ExecSpan = sp.ID()
	return res, sp
}

// spillBudget derives the statement's operator-memory budget from the
// session's resource group: slot quota × memory_spill_ratio, where a SET
// memory_spill_ratio overrides the group's MEMORY_SPILL_RATIO, which
// overrides Config.MemorySpillRatio. 0 = spilling disabled.
func (s *Session) spillBudget() int64 {
	g, ok := s.engine.cluster.Groups().Group(s.role.ResourceGroup)
	if !ok {
		return 0
	}
	sessionRatio := -1
	if v, ok := s.settings["memory_spill_ratio"]; ok {
		sessionRatio = plan.ParseLimitInt(v, -1)
	}
	return g.SpillBudget(sessionRatio, s.engine.cluster.Config().MemorySpillRatio)
}

// statementTimeout reads the session's statement_timeout setting
// (milliseconds, PostgreSQL-style; 0 or unset = no limit).
func (s *Session) statementTimeout() time.Duration {
	v, ok := s.settings["statement_timeout"]
	if !ok {
		return 0
	}
	ms := plan.ParseLimitInt(v, 0)
	if ms <= 0 {
		return 0
	}
	return time.Duration(ms) * time.Millisecond
}

// chargeStmtCPU pays the per-statement CPU quantum under the session's
// resource group.
func (s *Session) chargeStmtCPU(ctx context.Context) error {
	if !s.useRG || s.slot == nil || s.stmtCPU <= 0 {
		return nil
	}
	return s.slot.ChargeCPU(ctx, s.stmtCPU)
}

func (s *Session) planner(params []types.Datum) *plan.Planner {
	cfg := s.engine.cluster.Config()
	dop := cfg.ExecParallelism
	if v, ok := s.settings["exec_parallelism"]; ok {
		dop = plan.ParseLimitInt(v, dop)
	}
	bt := cfg.BroadcastThreshold
	if v, ok := s.settings["broadcast_threshold"]; ok {
		bt = plan.ParseLimitInt(v, bt)
	}
	return &plan.Planner{
		Catalog: s.engine.cluster.Catalog(),
		// Live count, not cfg.NumSegments: online expansion widens the
		// cluster at runtime and new plans must route across the new width.
		NumSegments:        s.engine.cluster.SegCount(),
		Optimizer:          s.optimizer,
		Stats:              s.engine.cluster,
		Parallelism:        dop,
		Pushdown:           s.settingBool("enable_zonemaps", cfg.EnableZoneMaps),
		CostOpt:            s.settingBool("enable_costopt", cfg.EnableCostOpt),
		BroadcastThreshold: bt,
		Params:             params,
	}
}

// settingBool reads an on/off session setting with a config-level default.
func (s *Session) settingBool(name string, def bool) bool {
	v, ok := s.settings[name]
	if !ok {
		return def
	}
	switch strings.ToLower(v) {
	case "on", "true", "1", "yes":
		return true
	case "off", "false", "0", "no":
		return false
	default:
		return def
	}
}

// execStatement runs one non-transaction-control statement inside s.txn.
func (s *Session) execStatement(ctx context.Context, st sql.Statement, entry *stmtEntry, params []types.Datum) (*Result, error) {
	cl := s.engine.cluster
	cfg := cl.Config()
	switch x := st.(type) {
	case *sql.SelectStmt:
		p := s.planner(params)
		key := x.String()
		if entry != nil {
			key = entry.str // same string, computed once and cached
		}
		if p.CostOpt && p.Optimizer == plan.OptimizerOLAP && cl.IsMisestimated(key) {
			// A prior execution of this statement broke its cardinality
			// error bounds: fall back to the robust plan (no broadcast,
			// conservative memory grants) for this and later runs.
			p.Robust = true
			cl.NoteRobustFallback()
		}
		// Plan caching: only param-free statements (the binder folds $N
		// values into the plan as constants, so a parameterized plan is
		// valid for exactly one binding). The fingerprint carries the
		// catalog/stats epoch and every plan-shaping setting; the robust
		// bit keeps a misestimated statement's optimistic plan from being
		// served after the fallback engaged.
		var tr *obs.Trace
		var planT0 time.Time
		if s.cur != nil && s.cur.trace != nil {
			tr = s.cur.trace
			planT0 = time.Now()
		}
		var planKey string
		var pl *plan.Planned
		if entry != nil && len(params) == 0 {
			planKey = planFingerprint(cl.PlanEpoch(), p, p.Robust)
			pl = entry.lookupPlan(s.engine.stmts, planKey)
		}
		if pl == nil {
			var err error
			pl, err = p.PlanSelect(x)
			if err != nil {
				return nil, err
			}
			if planKey != "" {
				entry.storePlan(planKey, pl)
			}
		}
		if tr != nil {
			// Covers the cache lookup too: a plan-cache hit shows up in the
			// trace as a near-zero plan span.
			tr.Record(s.cur.root.ID(), "plan", -1, planT0, time.Since(planT0))
		}
		// Work on a shallow copy: runPlannedSelect may adjust the lock
		// level on the wrapper, and the cached plan is shared by every
		// session (the node tree itself is read-only during execution).
		plCopy := *pl
		pl = &plCopy
		var nodeRows *plan.NodeRowCounts
		if p.CostOpt && p.Optimizer == plan.OptimizerOLAP && !p.Robust {
			nodeRows = plan.NewNodeRowCounts(pl.Root)
		}
		var scan *cluster.ScanCounters
		var spill *cluster.SpillCounters
		var ops *plan.OpStats
		if ob := s.cur; ob != nil {
			scan, spill = &ob.scan, &ob.spill
			if ob.trace != nil {
				// Tracing arms operator stats so per-operator spans can be
				// synthesized once the slices retire.
				ops = plan.NewOpStats(pl.Root, cl.SegCount())
			}
		}
		rows, schema, _, err := s.runPlannedSelect(ctx, pl, scan, spill, nodeRows, ops)
		if err != nil {
			return nil, err
		}
		s.cur.setRows(int64(len(rows)))
		if nodeRows != nil {
			if mis := plan.CheckRiskBounds(pl.Costs, nodeRows); len(mis) > 0 {
				cl.RecordMisestimate(key)
			}
		}
		return &Result{Columns: columnNames(schema), Rows: rows, Tag: "SELECT"}, nil

	case *sql.AnalyzeStmt:
		n, err := cl.Analyze(ctx, x.Table)
		if err != nil {
			return nil, err
		}
		return &Result{RowsAffected: n, Tag: "ANALYZE"}, nil

	case *sql.InsertStmt:
		pl, err := s.planner(params).PlanInsert(x)
		if err != nil {
			return nil, err
		}
		if err := cl.LockCoordinator(ctx, s.txn, pl.LockTable, lockModeOf(pl.LockModeLevel)); err != nil {
			return nil, wrapLockErr(err)
		}
		if err := s.chargeStmtCPU(ctx); err != nil {
			return nil, err
		}
		ip := pl.Root.(*plan.InsertPlan)
		res, sp := s.dmlResources()
		n, err := cl.RunInsert(ctx, s.txn, cl.Snapshot(), ip, res)
		sp.End()
		if err != nil {
			return nil, wrapLockErr(err)
		}
		return &Result{RowsAffected: n, Tag: fmt.Sprintf("INSERT 0 %d", n)}, nil

	case *sql.UpdateStmt:
		pl, err := s.planner(params).PlanUpdate(x, cfg.GDD)
		if err != nil {
			return nil, err
		}
		if err := cl.LockCoordinator(ctx, s.txn, pl.LockTable, lockModeOf(pl.LockModeLevel)); err != nil {
			return nil, wrapLockErr(err)
		}
		if err := s.chargeStmtCPU(ctx); err != nil {
			return nil, err
		}
		up := pl.Root.(*plan.UpdatePlan)
		res, sp := s.dmlResources()
		n, err := cl.RunUpdate(ctx, s.txn, cl.Snapshot(), up, pl.DirectSegment, res)
		sp.End()
		if err != nil {
			return nil, wrapLockErr(err)
		}
		return &Result{RowsAffected: n, Tag: fmt.Sprintf("UPDATE %d", n)}, nil

	case *sql.DeleteStmt:
		pl, err := s.planner(params).PlanDelete(x, cfg.GDD)
		if err != nil {
			return nil, err
		}
		if err := cl.LockCoordinator(ctx, s.txn, pl.LockTable, lockModeOf(pl.LockModeLevel)); err != nil {
			return nil, wrapLockErr(err)
		}
		if err := s.chargeStmtCPU(ctx); err != nil {
			return nil, err
		}
		dp := pl.Root.(*plan.DeletePlan)
		res, sp := s.dmlResources()
		n, err := cl.RunDelete(ctx, s.txn, cl.Snapshot(), dp, pl.DirectSegment, res)
		sp.End()
		if err != nil {
			return nil, wrapLockErr(err)
		}
		return &Result{RowsAffected: n, Tag: fmt.Sprintf("DELETE %d", n)}, nil

	case *sql.LockStmt:
		mode := lockmgr.ModeForName(x.Mode)
		if mode == 0 {
			return nil, fmt.Errorf("core: unknown lock mode %q", x.Mode)
		}
		if err := cl.LockTableEverywhere(ctx, s.txn, x.Table, int(mode)); err != nil {
			return nil, wrapLockErr(err)
		}
		return &Result{Tag: "LOCK TABLE"}, nil

	case *sql.ExplainStmt:
		return s.execExplain(ctx, x, params)

	case *sql.CreateTableStmt:
		if err := s.engine.applyCreateTable(x); err != nil {
			return nil, err
		}
		return &Result{Tag: "CREATE TABLE"}, nil

	case *sql.DropTableStmt:
		if x.IfExists && !cl.Catalog().HasTable(x.Name) {
			return &Result{Tag: "DROP TABLE"}, nil
		}
		if err := cl.ApplyDropTable(x.Name); err != nil {
			return nil, err
		}
		return &Result{Tag: "DROP TABLE"}, nil

	case *sql.TruncateStmt:
		if err := cl.ApplyTruncate(ctx, s.txn, x.Name); err != nil {
			return nil, wrapLockErr(err)
		}
		return &Result{Tag: "TRUNCATE TABLE"}, nil

	case *sql.CreateIndexStmt:
		t, err := cl.Catalog().Table(x.Table)
		if err != nil {
			return nil, err
		}
		idx := &catalog.Index{Name: strings.ToLower(x.Name)}
		for _, c := range x.Columns {
			i := t.Schema.ColumnIndex(c)
			if i < 0 {
				return nil, fmt.Errorf("core: column %q of table %q does not exist", c, x.Table)
			}
			idx.Columns = append(idx.Columns, i)
		}
		if err := cl.ApplyCreateIndex(ctx, s.txn, x.Table, idx); err != nil {
			return nil, wrapLockErr(err)
		}
		return &Result{Tag: "CREATE INDEX"}, nil

	case *sql.VacuumStmt:
		n, err := cl.Vacuum(x.Table)
		if err != nil {
			return nil, err
		}
		return &Result{RowsAffected: n, Tag: "VACUUM"}, nil

	case *sql.CreateResourceGroupStmt:
		if err := s.engine.applyResourceGroup(x); err != nil {
			return nil, err
		}
		return &Result{Tag: "CREATE RESOURCE GROUP"}, nil

	case *sql.DropResourceGroupStmt:
		if err := cl.ApplyDropResourceGroup(x.Name); err != nil {
			return nil, err
		}
		return &Result{Tag: "DROP RESOURCE GROUP"}, nil

	case *sql.CreateRoleStmt:
		if err := cl.Catalog().CreateRole(x.Name, x.ResourceGroup); err != nil {
			return nil, err
		}
		return &Result{Tag: "CREATE ROLE"}, nil

	case *sql.AlterRoleStmt:
		if err := cl.Catalog().AlterRole(x.Name, x.ResourceGroup); err != nil {
			return nil, err
		}
		return &Result{Tag: "ALTER ROLE"}, nil

	case *sql.AlterSystemExpandStmt:
		if err := cl.StartExpand(x.Target); err != nil {
			return nil, err
		}
		return &Result{Tag: fmt.Sprintf("EXPAND %d", x.Target)}, nil

	case *sql.SetStmt:
		if strings.EqualFold(x.Name, "optimizer") {
			if err := s.SetOptimizer(x.Value); err != nil {
				return nil, err
			}
		}
		if strings.EqualFold(x.Name, "replica_mode") {
			// Cluster-wide, applied live (the sync↔async switch); not stored
			// in the session settings so SHOW reads the cluster's actual mode.
			m, ok := cluster.ParseReplicaMode(strings.ToLower(x.Value))
			if !ok {
				return nil, fmt.Errorf("core: replica_mode must be none, async or sync (got %q)", x.Value)
			}
			if err := cl.SetReplicaMode(m); err != nil {
				return nil, err
			}
			return &Result{Tag: "SET"}, nil
		}
		if strings.EqualFold(x.Name, "memory_spill_ratio") {
			if v := plan.ParseLimitInt(x.Value, -1); v < 0 || v > 100 {
				return nil, fmt.Errorf("core: memory_spill_ratio must be between 0 and 100 (got %q)", x.Value)
			}
		}
		if strings.EqualFold(x.Name, "broadcast_threshold") {
			if v := plan.ParseLimitInt(x.Value, -1); v < 1 {
				return nil, fmt.Errorf("core: broadcast_threshold must be a positive row count (got %q)", x.Value)
			}
		}
		if strings.EqualFold(x.Name, "statement_timeout") {
			if v := plan.ParseLimitInt(x.Value, -1); v < 0 {
				return nil, fmt.Errorf("core: statement_timeout must be a millisecond count >= 0 (got %q)", x.Value)
			}
		}
		if strings.EqualFold(x.Name, "trace_queries") {
			switch strings.ToLower(x.Value) {
			case "on", "off", "true", "false", "1", "0", "yes", "no":
			default:
				return nil, fmt.Errorf("core: trace_queries must be on or off (got %q)", x.Value)
			}
		}
		if strings.EqualFold(x.Name, "log_min_duration") {
			if v := plan.ParseLimitInt(x.Value, -2); v < -1 {
				return nil, fmt.Errorf("core: log_min_duration must be a millisecond count >= 0, or -1 to disable (got %q)", x.Value)
			}
		}
		s.settings[strings.ToLower(x.Name)] = x.Value
		return &Result{Tag: "SET"}, nil

	case *sql.ShowStmt:
		return s.execShow(x)

	case *sql.FaultStmt:
		return s.execFault(x)

	default:
		return nil, fmt.Errorf("core: unsupported statement %T", st)
	}
}

// execFault executes the FAULT admin statement against the cluster's fault
// registry (rejected on clusters booted with NoFaultPoints).
func (s *Session) execFault(x *sql.FaultStmt) (*Result, error) {
	cl := s.engine.cluster
	if cl.Faults() == nil {
		return nil, cluster.ErrFaultsDisabled
	}
	switch x.Verb {
	case sql.FaultStatus:
		res := &Result{
			Columns: []string{"point", "segment", "action", "hits", "triggers", "exhausted"},
			Tag:     "FAULT STATUS",
		}
		for _, ps := range cl.FaultStatus() {
			res.Rows = append(res.Rows, types.Row{
				types.NewText(ps.Point),
				types.NewInt(int64(ps.Seg)),
				types.NewText(ps.Action.String()),
				types.NewInt(ps.Hits),
				types.NewInt(ps.Triggers),
				types.NewText(onOff(ps.Exhausted)),
			})
		}
		return res, nil

	case sql.FaultReset:
		n := cl.ResetFault(x.Point)
		return &Result{RowsAffected: n, Tag: "FAULT RESET"}, nil

	case sql.FaultResume:
		n := cl.ResumeFault(x.Point)
		return &Result{RowsAffected: n, Tag: "FAULT RESUME"}, nil

	default: // sql.FaultInject
		actName := x.Action
		if actName == "" {
			actName = "error"
		}
		act, ok := fault.ParseAction(actName)
		if !ok {
			return nil, fmt.Errorf("core: unknown fault action %q", actName)
		}
		if x.Probability < 0 || x.Probability > 100 {
			return nil, fmt.Errorf("core: fault probability must be between 0 and 100 (got %d)", x.Probability)
		}
		spec := fault.Spec{
			Point:       x.Point,
			Seg:         x.Seg,
			Action:      act,
			Message:     x.Message,
			Sleep:       time.Duration(x.SleepMS) * time.Millisecond,
			Start:       x.Start,
			Count:       x.Count,
			Probability: x.Probability,
			Seed:        x.Seed,
		}
		if err := cl.InjectFault(spec); err != nil {
			return nil, err
		}
		return &Result{Tag: "FAULT INJECT"}, nil
	}
}

// execShow answers SHOW statements: the gp_stat_* live system views, the
// virtual counter sets (scan_stats / spill_stats / fault_stats read the
// observability registry — one source of truth with /metrics), or the value
// of a plain session setting.
func (s *Session) execShow(x *sql.ShowStmt) (*Result, error) {
	name := strings.ToLower(x.Name)
	if name == "gp_stat_activity" {
		res := &Result{Columns: []string{"session", "role", "state", "query", "duration_ms", "statements"}, Tag: "SHOW"}
		for _, si := range s.engine.activity.Sessions() {
			durMS := int64(0)
			if si.State == "active" && !si.QueryStart.IsZero() {
				durMS = time.Since(si.QueryStart).Milliseconds()
			}
			res.Rows = append(res.Rows, types.Row{
				types.NewInt(int64(si.ID)),
				types.NewText(si.Role),
				types.NewText(si.State),
				types.NewText(si.Query),
				types.NewInt(durMS),
				types.NewInt(si.Statements),
			})
		}
		return res, nil
	}
	if name == "gp_stat_queries" || name == "gp_slow_queries" {
		recs := s.engine.activity.History(0)
		if name == "gp_slow_queries" {
			recs = s.engine.activity.SlowQueries(0)
		}
		res := &Result{Columns: []string{"query_id", "session", "query", "rows", "blocks_scanned", "blocks_skipped", "spill_bytes", "duration_ms", "error"}, Tag: "SHOW"}
		for _, r := range recs {
			res.Rows = append(res.Rows, types.Row{
				types.NewInt(int64(r.QueryID)),
				types.NewInt(int64(r.Session)),
				types.NewText(r.SQL),
				types.NewInt(r.Rows),
				types.NewInt(r.BlocksScanned),
				types.NewInt(r.BlocksSkipped),
				types.NewInt(r.SpillBytes),
				types.NewInt(r.Dur.Milliseconds()),
				types.NewText(r.Err),
			})
		}
		return res, nil
	}
	if name == "gp_stat_metrics" {
		snap := s.engine.cluster.Metrics().Snapshot()
		res := &Result{Columns: []string{"metric", "value"}, Tag: "SHOW"}
		for _, n := range snap.Names() {
			if v, ok := snap.Values[n]; ok {
				res.Rows = append(res.Rows, types.Row{types.NewText(n), types.NewInt(v)})
				continue
			}
			h := snap.Hists[n]
			res.Rows = append(res.Rows,
				types.Row{types.NewText(n + ".count"), types.NewInt(h.Count)},
				types.Row{types.NewText(n + ".sum_ms"), types.NewInt(h.Sum.Milliseconds())})
		}
		return res, nil
	}
	if name == "gp_stat_traces" {
		res := &Result{Columns: []string{"query_id", "span"}, Tag: "SHOW"}
		for _, t := range s.engine.activity.Traces().Recent(0) {
			for _, line := range t.Render() {
				res.Rows = append(res.Rows, types.Row{types.NewInt(int64(t.QueryID)), types.NewText(line)})
			}
		}
		return res, nil
	}
	if name == "wal_stats" {
		st := s.engine.cluster.WALStats()
		res := &Result{Columns: []string{"stat", "value"}, Tag: "SHOW"}
		add := func(k string, v int64) {
			res.Rows = append(res.Rows, types.Row{types.NewText(k), types.NewInt(v)})
		}
		add("wal_records", st.Records)
		add("wal_bytes", st.Bytes)
		add("wal_flushes", st.Flushes)
		add("mirror_applied_lsn", int64(st.MirrorAppliedLSN))
		add("failovers", st.Failovers)
		add("replay_lsn", int64(st.ReplayLSN))
		return res, nil
	}
	if name == "spill_stats" {
		snap := s.engine.cluster.Metrics().Snapshot()
		res := &Result{Columns: []string{"stat", "value"}, Tag: "SHOW"}
		add := func(k string, v int64) {
			res.Rows = append(res.Rows, types.Row{types.NewText(k), types.NewInt(v)})
		}
		add("spills", snap.Values["exec.spill.events"])
		add("spill_bytes", snap.Values["exec.spill.bytes"])
		add("spill_files", snap.Values["exec.spill.files"])
		add("spill_mem_peak", snap.Values["exec.spill.mem_peak"])
		add("vmem_peak", snap.Values["exec.vmem_peak"])
		return res, nil
	}
	if name == "optimizer_stats" {
		analyzed, mises, fallbacks := s.engine.cluster.OptimizerStats()
		res := &Result{Columns: []string{"stat", "value"}, Tag: "SHOW"}
		add := func(k string, v int64) {
			res.Rows = append(res.Rows, types.Row{types.NewText(k), types.NewInt(v)})
		}
		add("analyzed_tables", int64(analyzed))
		add("misestimates", mises)
		add("robust_fallbacks", fallbacks)
		return res, nil
	}
	if name == "plan_cache" {
		st := s.engine.stmts.Stats()
		res := &Result{Columns: []string{"stat", "value"}, Tag: "SHOW"}
		add := func(k string, v int64) {
			res.Rows = append(res.Rows, types.Row{types.NewText(k), types.NewInt(v)})
		}
		add("hits", st.Hits)
		add("misses", st.Misses)
		add("plan_hits", st.PlanHits)
		add("plan_misses", st.PlanMisses)
		add("entries", int64(st.Entries))
		add("evictions", st.Evictions)
		add("epoch", int64(s.engine.cluster.PlanEpoch()))
		return res, nil
	}
	if name == "fault_stats" {
		cl := s.engine.cluster
		snap := cl.Metrics().Snapshot()
		res := &Result{Columns: []string{"stat", "value"}, Tag: "SHOW"}
		add := func(k string, v int64) {
			res.Rows = append(res.Rows, types.Row{types.NewText(k), types.NewInt(v)})
		}
		add("fault_points_enabled", snap.Values["fault.enabled"])
		add("armed_specs", snap.Values["fault.armed"])
		add("point_hits", snap.Values["fault.hits"])
		add("point_triggers", snap.Values["fault.triggers"])
		add("dispatch_retries", snap.Values["dispatch.retries"])
		add("breaker_opens", snap.Values["fault.breaker_opens"])
		add("breaker_fast_fails", snap.Values["fault.breaker_fast_fails"])
		add("wal_truncations", snap.Values["wal.truncations"])
		add("wal_truncated_bytes", snap.Values["wal.truncated_bytes"])
		add("spill_leaks", snap.Values["exec.spill.leaks"])
		for _, b := range cl.BreakerStatuses() {
			res.Rows = append(res.Rows, types.Row{
				types.NewText(fmt.Sprintf("breaker_seg%d", b.Seg)),
				types.NewText(b.State.String()),
			})
		}
		return res, nil
	}
	if name == "expand_status" {
		p := s.engine.cluster.ExpandStatus()
		res := &Result{Columns: []string{"stat", "value"}, Tag: "SHOW"}
		add := func(k, v string) {
			res.Rows = append(res.Rows, types.Row{types.NewText(k), types.NewText(v)})
		}
		state := "idle"
		switch {
		case p.Active:
			state = "expanding"
		case p.Err != "":
			state = "failed"
		case p.Done && p.Target > p.From:
			state = "complete"
		}
		add("state", state)
		add("segments_from", fmt.Sprintf("%d", p.From))
		add("segments_target", fmt.Sprintf("%d", p.Target))
		add("tables_done", fmt.Sprintf("%d/%d", p.TablesDone, p.TablesTotal))
		add("moving", p.Moving)
		add("rows_moved", fmt.Sprintf("%d", p.RowsMoved))
		add("restarts", fmt.Sprintf("%d", p.Restarts))
		if p.Err != "" {
			add("error", p.Err)
		}
		return res, nil
	}
	if name == "scan_stats" {
		snap := s.engine.cluster.Metrics().Snapshot()
		res := &Result{Columns: []string{"stat", "value"}, Tag: "SHOW"}
		add := func(k string, v int64) {
			res.Rows = append(res.Rows, types.Row{types.NewText(k), types.NewInt(v)})
		}
		add("blocks_scanned", snap.Values["storage.scan.blocks_scanned"])
		add("blocks_skipped", snap.Values["storage.scan.blocks_skipped"])
		add("cache_hits", snap.Values["storage.blockcache.hits"])
		add("cache_misses", snap.Values["storage.blockcache.misses"])
		add("cache_evictions", snap.Values["storage.blockcache.evictions"])
		add("cache_used_bytes", snap.Values["storage.blockcache.used_bytes"])
		add("cache_entries", snap.Values["storage.blockcache.entries"])
		return res, nil
	}
	v, ok := s.settings[name]
	if !ok {
		// Surface the config-backed defaults for the knobs sessions can set.
		cfg := s.engine.cluster.Config()
		switch name {
		case "enable_zonemaps":
			v = onOff(cfg.EnableZoneMaps)
		case "enable_costopt":
			v = onOff(cfg.EnableCostOpt)
		case "broadcast_threshold":
			v = fmt.Sprintf("%d", cfg.BroadcastThreshold)
		case "exec_parallelism":
			v = fmt.Sprintf("%d", cfg.ExecParallelism)
		case "memory_spill_ratio":
			v = fmt.Sprintf("%d", cfg.MemorySpillRatio)
		case "statement_timeout":
			v = "0"
		case "trace_queries":
			v = "off"
		case "log_min_duration":
			v = "-1"
		case "replica_mode":
			v = s.engine.cluster.ReplicaModeNow().String()
		case "optimizer":
			v = s.optimizer.String()
		default:
			return nil, fmt.Errorf("core: unrecognized configuration parameter %q", x.Name)
		}
	}
	return &Result{
		Columns: []string{name},
		Rows:    []types.Row{{types.NewText(v)}},
		Tag:     "SHOW",
	}, nil
}

func onOff(b bool) string {
	if b {
		return "on"
	}
	return "off"
}

func (s *Session) execExplain(ctx context.Context, x *sql.ExplainStmt, params []types.Datum) (*Result, error) {
	p := s.planner(params)
	cl := s.engine.cluster
	if x.Analyze {
		// EXPLAIN ANALYZE executes the statement for real — DML included
		// (PostgreSQL semantics: the rows are written; wrap in BEGIN/ROLLBACK
		// to measure without keeping the effects).
		switch t := x.Target.(type) {
		case *sql.SelectStmt:
			pl, err := p.PlanSelect(t)
			if err != nil {
				return nil, err
			}
			return s.explainAnalyzeSelect(ctx, pl)
		case *sql.InsertStmt:
			pl, err := p.PlanInsert(t)
			if err != nil {
				return nil, err
			}
			ip := pl.Root.(*plan.InsertPlan)
			return s.explainAnalyzeDML(ctx, pl.Root, pl.LockTable, pl.LockModeLevel, func(res *cluster.QueryResources) (int, error) {
				return cl.RunInsert(ctx, s.txn, cl.Snapshot(), ip, res)
			})
		case *sql.UpdateStmt:
			pl, err := p.PlanUpdate(t, cl.Config().GDD)
			if err != nil {
				return nil, err
			}
			up := pl.Root.(*plan.UpdatePlan)
			return s.explainAnalyzeDML(ctx, pl.Root, pl.LockTable, pl.LockModeLevel, func(res *cluster.QueryResources) (int, error) {
				return cl.RunUpdate(ctx, s.txn, cl.Snapshot(), up, pl.DirectSegment, res)
			})
		case *sql.DeleteStmt:
			pl, err := p.PlanDelete(t, cl.Config().GDD)
			if err != nil {
				return nil, err
			}
			dp := pl.Root.(*plan.DeletePlan)
			return s.explainAnalyzeDML(ctx, pl.Root, pl.LockTable, pl.LockModeLevel, func(res *cluster.QueryResources) (int, error) {
				return cl.RunDelete(ctx, s.txn, cl.Snapshot(), dp, pl.DirectSegment, res)
			})
		default:
			return nil, fmt.Errorf("core: EXPLAIN ANALYZE supports SELECT, INSERT, UPDATE and DELETE (got %T)", x.Target)
		}
	}
	var root plan.Node
	var costs map[plan.Node]*plan.NodeCost
	switch t := x.Target.(type) {
	case *sql.SelectStmt:
		pl, err := p.PlanSelect(t)
		if err != nil {
			return nil, err
		}
		root = pl.Root
		costs = pl.Costs
	case *sql.InsertStmt:
		pl, err := p.PlanInsert(t)
		if err != nil {
			return nil, err
		}
		root = pl.Root
	case *sql.UpdateStmt:
		pl, err := p.PlanUpdate(t, s.engine.cluster.Config().GDD)
		if err != nil {
			return nil, err
		}
		root = pl.Root
	case *sql.DeleteStmt:
		pl, err := p.PlanDelete(t, s.engine.cluster.Config().GDD)
		if err != nil {
			return nil, err
		}
		root = pl.Root
	default:
		return nil, fmt.Errorf("core: cannot EXPLAIN %T", x.Target)
	}
	text := plan.Explain(root)
	if costs != nil {
		text = plan.ExplainWithCosts(root, costs)
	}
	res := &Result{Columns: []string{"QUERY PLAN"}, Tag: "EXPLAIN"}
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		res.Rows = append(res.Rows, types.Row{types.NewText(line)})
	}
	return res, nil
}

// runPlannedSelect executes a planned SELECT: the coordinator lock (with the
// GPDB 5 FOR UPDATE serialization upgrade), the per-statement CPU charge,
// and the cluster dispatch. Both the plain SELECT path and EXPLAIN ANALYZE
// go through here so the measured execution is exactly the real one. When
// scan/spill are non-nil they receive the statement's block and spill
// counters.
func (s *Session) runPlannedSelect(ctx context.Context, pl *plan.Planned, scan *cluster.ScanCounters, spill *cluster.SpillCounters, nodeRows *plan.NodeRowCounts, ops *plan.OpStats) ([]types.Row, *types.Schema, time.Duration, error) {
	cl := s.engine.cluster
	if pl.ForUpdate && !cl.Config().GDD {
		// GPDB 5 locking: FOR UPDATE serializes at the coordinator.
		pl.LockModeLevel = 7
	}
	if pl.LockTable != "" {
		if err := cl.LockCoordinator(ctx, s.txn, pl.LockTable, lockModeOf(pl.LockModeLevel)); err != nil {
			return nil, nil, 0, wrapLockErr(err)
		}
	}
	if err := s.chargeStmtCPU(ctx); err != nil {
		return nil, nil, 0, err
	}
	res := s.resources()
	if scan != nil || spill != nil || nodeRows != nil || ops != nil {
		if res == nil {
			res = &cluster.QueryResources{}
		}
		res.Scan = scan
		res.Spill = spill
		res.NodeRows = nodeRows
		res.Ops = ops
	}
	var execSp obs.ActiveSpan
	if ob := s.cur; ob != nil && ob.trace != nil {
		if res == nil {
			res = &cluster.QueryResources{}
		}
		res.Trace = ob.trace
		execSp = ob.trace.Begin(ob.root.ID(), "execute", -1)
		res.ExecSpan = execSp.ID()
	}
	start := time.Now()
	rows, schema, err := cl.RunSelect(ctx, s.txn, cl.Snapshot(), pl, res)
	elapsed := time.Since(start)
	if ops != nil && res != nil && res.Trace != nil {
		recordOpSpans(res.Trace, res.ExecSpan, pl.Root, ops, start)
	}
	execSp.End()
	if err != nil {
		return nil, nil, 0, wrapLockErr(err)
	}
	return rows, schema, elapsed, nil
}

// recordOpSpans synthesizes per-operator spans from the executor statistics:
// one span per (plan node, active location) carrying the operator's
// inclusive wall time, parented under the coordinator's execute span.
func recordOpSpans(tr *obs.Trace, parent obs.SpanID, root plan.Node, ops *plan.OpStats, start time.Time) {
	var walk func(n plan.Node)
	walk = func(n plan.Node) {
		if c := ops.At(n, -1); c != nil && (c.Rows.Load() > 0 || c.Batches.Load() > 0 || c.WallNanos.Load() > 0) {
			tr.Record(parent, n.Explain(), -1, start, time.Duration(c.WallNanos.Load()))
		}
		for seg, c := range ops.Segments(n) {
			if c.Rows.Load() == 0 && c.Batches.Load() == 0 && c.WallNanos.Load() == 0 {
				continue
			}
			tr.Record(parent, n.Explain(), seg, start, time.Duration(c.WallNanos.Load()))
		}
		for _, ch := range n.Children() {
			walk(ch)
		}
	}
	walk(root)
}

// explainAnalyzeSelect runs the planned SELECT for real and renders the
// operator-level statistics: per-node rows/batches/inclusive wall time, peak
// operator memory, spill bytes, skew ratio, and per-segment detail lines,
// plus the statement-level counters — rows returned, elapsed time, the
// zone-map pushdown's blocks scanned/skipped, and spill activity.
func (s *Session) explainAnalyzeSelect(ctx context.Context, pl *plan.Planned) (*Result, error) {
	var scan cluster.ScanCounters
	var spill cluster.SpillCounters
	nodeRows := plan.NewNodeRowCounts(pl.Root)
	ops := plan.NewOpStats(pl.Root, s.engine.cluster.SegCount())
	rows, _, elapsed, err := s.runPlannedSelect(ctx, pl, &scan, &spill, nodeRows, ops)
	if err != nil {
		return nil, err
	}
	// Fold into the statement's gp_stat_queries record so the retained query
	// and the EXPLAIN ANALYZE totals match.
	if ob := s.cur; ob != nil {
		ob.scan, ob.spill = scan, spill
		ob.setRows(int64(len(rows)))
	}
	text := plan.ExplainAnalyzedOps(pl.Root, pl.Costs, nodeRows, ops)
	out := &Result{Columns: []string{"QUERY PLAN"}, Tag: "EXPLAIN"}
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		out.Rows = append(out.Rows, types.Row{types.NewText(line)})
	}
	out.Rows = append(out.Rows,
		types.Row{types.NewText(fmt.Sprintf("blocks: scanned=%d skipped=%d",
			scan.BlocksScanned, scan.BlocksSkipped))},
		types.Row{types.NewText(fmt.Sprintf("spill: spills=%d bytes=%d files=%d",
			spill.Spills, spill.SpillBytes, spill.SpillFiles))},
		types.Row{types.NewText(fmt.Sprintf("rows: %d", len(rows)))},
		types.Row{types.NewText(fmt.Sprintf("execution time: %.3f ms", float64(elapsed.Microseconds())/1000))},
	)
	return out, nil
}

// explainAnalyzeDML executes the write for real and reports the per-segment
// rows-affected breakdown plus elapsed time beneath the plan text. Timings
// come from the monotonic clock (time.Since), never wall-clock arithmetic.
func (s *Session) explainAnalyzeDML(ctx context.Context, root plan.Node, lockTable string, lockLevel int, run func(res *cluster.QueryResources) (int, error)) (*Result, error) {
	cl := s.engine.cluster
	if lockTable != "" {
		if err := cl.LockCoordinator(ctx, s.txn, lockTable, lockModeOf(lockLevel)); err != nil {
			return nil, wrapLockErr(err)
		}
	}
	if err := s.chargeStmtCPU(ctx); err != nil {
		return nil, err
	}
	res, sp := s.dmlResources()
	if res == nil {
		res = &cluster.QueryResources{}
	}
	res.DML = &cluster.DMLCounters{}
	start := time.Now()
	n, err := run(res)
	elapsed := time.Since(start)
	sp.End()
	if err != nil {
		return nil, wrapLockErr(err)
	}
	if ob := s.cur; ob != nil {
		ob.setRows(int64(n))
	}
	out := &Result{Columns: []string{"QUERY PLAN"}, Tag: "EXPLAIN"}
	for _, line := range strings.Split(strings.TrimRight(plan.Explain(root), "\n"), "\n") {
		out.Rows = append(out.Rows, types.Row{types.NewText(line)})
	}
	per := res.DML.PerSegment()
	segs := make([]int, 0, len(per))
	for seg := range per {
		segs = append(segs, seg)
	}
	sort.Ints(segs)
	for _, seg := range segs {
		out.Rows = append(out.Rows, types.Row{types.NewText(fmt.Sprintf("  seg%d: rows=%d", seg, per[seg]))})
	}
	out.Rows = append(out.Rows,
		types.Row{types.NewText(fmt.Sprintf("rows affected: %d", n))},
		types.Row{types.NewText(fmt.Sprintf("execution time: %.3f ms", float64(elapsed.Microseconds())/1000))},
	)
	return out, nil
}

func columnNames(s *types.Schema) []string {
	if s == nil {
		return nil
	}
	out := make([]string, len(s.Columns))
	for i, c := range s.Columns {
		out[i] = c.Name
	}
	return out
}

func lockModeOf(level int) lockmgr.Mode {
	if level < 1 || level > 8 {
		return lockmgr.AccessShare
	}
	return lockmgr.Mode(level)
}

// wrapLockErr annotates deadlock-victim errors with the PostgreSQL-style
// message users grep for.
func wrapLockErr(err error) error {
	if errors.Is(err, lockmgr.ErrDeadlockVictim) {
		return fmt.Errorf("deadlock detected: %w", err)
	}
	return err
}
