// Package core ties the whole system together: an Engine owns a cluster
// (coordinator + segments), and Sessions drive the SQL pipeline — parse,
// plan (with the OLTP/OLAP optimizer choice), coordinator locking, dispatch,
// execution, and transaction control with one-phase/two-phase commit.
package core

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/catalog"
	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/sql"
	"repro/internal/types"
)

// Engine is one running database instance.
type Engine struct {
	cluster *cluster.Cluster
	// stmts is the engine-wide shared parse/plan cache: every session's
	// Exec resolves statement text through it.
	stmts *StmtCache
	// activity tracks live sessions (gp_stat_activity), the finished-query
	// history (gp_stat_queries), the slow-query log, and retained traces.
	activity *obs.Activity

	qStatements *obs.Counter   // query.statements
	qErrors     *obs.Counter   // query.errors
	qSeconds    *obs.Histogram // query.seconds

	// onClose hooks run at Close before the cluster shuts down (gpbench
	// -metrics dumps the registry snapshot from one).
	onClose []func()
}

// NewEngine boots an engine over the given cluster configuration.
func NewEngine(cfg *cluster.Config) *Engine {
	c := cluster.New(cfg)
	e := &Engine{
		cluster:  c,
		stmts:    NewStmtCache(c.Config().PlanCacheSize),
		activity: obs.NewActivity(256, 128, 64),
	}
	r := c.Metrics()
	e.qStatements = r.Counter("query.statements")
	e.qErrors = r.Counter("query.errors")
	e.qSeconds = r.Histogram("query.seconds")
	// Plan-cache occupancy and hit rates fold the cache's own counters at
	// scrape time; the cache stays the single source of truth.
	r.GaugeFunc("plancache.hits", func() int64 { return e.stmts.Stats().Hits })
	r.GaugeFunc("plancache.misses", func() int64 { return e.stmts.Stats().Misses })
	r.GaugeFunc("plancache.plan_hits", func() int64 { return e.stmts.Stats().PlanHits })
	r.GaugeFunc("plancache.plan_misses", func() int64 { return e.stmts.Stats().PlanMisses })
	r.GaugeFunc("plancache.entries", func() int64 { return int64(e.stmts.Stats().Entries) })
	r.GaugeFunc("plancache.evictions", func() int64 { return e.stmts.Stats().Evictions })
	return e
}

// Activity exposes the engine's session/query tracker.
func (e *Engine) Activity() *obs.Activity { return e.activity }

// Metrics exposes the engine-wide observability registry (owned by the
// cluster; the engine adds its query and plan-cache series to it).
func (e *Engine) Metrics() *obs.Registry { return e.cluster.Metrics() }

// StmtCache exposes the shared parse/plan cache (stats surfaces, tests).
func (e *Engine) StmtCache() *StmtCache { return e.stmts }

// OnClose registers fn to run when the engine closes, before the cluster
// shuts down (so metric gauge funcs still see live segments).
func (e *Engine) OnClose(fn func()) { e.onClose = append(e.onClose, fn) }

// Close runs the close hooks and shuts down background daemons.
func (e *Engine) Close() {
	for _, fn := range e.onClose {
		fn()
	}
	e.onClose = nil
	e.cluster.Close()
}

// Cluster exposes the underlying cluster for tests and benchmarks.
func (e *Engine) Cluster() *cluster.Cluster { return e.cluster }

// Result is the outcome of one statement.
type Result struct {
	// Columns names the result columns (SELECT/EXPLAIN only).
	Columns []string
	// Rows holds result tuples (SELECT/EXPLAIN only).
	Rows []types.Row
	// RowsAffected counts tuples written by DML.
	RowsAffected int
	// Tag is the command tag, e.g. "SELECT", "INSERT", "COMMIT".
	Tag string
}

// applyCreateTable converts the AST to a catalog table and instantiates it.
func (e *Engine) applyCreateTable(st *sql.CreateTableStmt) error {
	if st.IfNotExists && e.cluster.Catalog().HasTable(st.Name) {
		return nil
	}
	cols := make([]types.Column, len(st.Columns))
	for i, c := range st.Columns {
		cols[i] = types.Column{Name: strings.ToLower(c.Name), Kind: c.Kind}
	}
	t := &catalog.Table{
		Name:         strings.ToLower(st.Name),
		Schema:       &types.Schema{Columns: cols},
		Storage:      catalog.Storage(st.Storage),
		PartitionCol: -1,
	}
	switch st.Distribution {
	case sql.DistributeHash:
		t.Distribution = catalog.DistHash
		if len(st.DistKeys) == 0 {
			return fmt.Errorf("core: DISTRIBUTED BY requires key columns")
		}
		for _, k := range st.DistKeys {
			i := t.Schema.ColumnIndex(k)
			if i < 0 {
				return fmt.Errorf("core: distribution key %q is not a column", k)
			}
			t.DistKeyCols = append(t.DistKeyCols, i)
		}
	case sql.DistributeRandomly:
		t.Distribution = catalog.DistRandom
	case sql.DistributeReplicated:
		t.Distribution = catalog.DistReplicated
	}
	if st.PartitionBy != "" {
		i := t.Schema.ColumnIndex(st.PartitionBy)
		if i < 0 {
			return fmt.Errorf("core: partition key %q is not a column", st.PartitionBy)
		}
		t.PartitionCol = i
		kind := t.Schema.Columns[i].Kind
		for _, pd := range st.Partitions {
			start, err := pd.Start.CastTo(kind)
			if err != nil {
				return fmt.Errorf("core: partition %q start: %w", pd.Name, err)
			}
			end, err := pd.End.CastTo(kind)
			if err != nil {
				return fmt.Errorf("core: partition %q end: %w", pd.Name, err)
			}
			if types.Compare(start, end) >= 0 {
				return fmt.Errorf("core: partition %q has empty range", pd.Name)
			}
			t.Partitions = append(t.Partitions, catalog.Partition{
				Name:    strings.ToLower(pd.Name),
				Start:   start,
				End:     end,
				Storage: catalog.Storage(pd.Storage),
			})
		}
		if len(t.Partitions) == 0 {
			return fmt.Errorf("core: PARTITION BY requires at least one partition")
		}
	}
	return e.cluster.ApplyCreateTable(t)
}

// applyResourceGroup converts CREATE RESOURCE GROUP options.
func (e *Engine) applyResourceGroup(st *sql.CreateResourceGroupStmt) error {
	def := &catalog.ResourceGroupDef{Name: strings.ToLower(st.Name), Concurrency: 20, MemSharedQuota: 20}
	for _, opt := range st.Options {
		switch opt.Name {
		case "CONCURRENCY":
			def.Concurrency = atoiDefault(opt.Value, 20)
		case "CPU_RATE_LIMIT":
			def.CPURateLimit = atoiDefault(opt.Value, 20)
		case "CPUSET":
			def.CPUSet = opt.Value
		case "MEMORY_LIMIT":
			def.MemoryLimit = atoiDefault(opt.Value, 10)
		case "MEMORY_SHARED_QUOTA":
			def.MemSharedQuota = atoiDefault(opt.Value, 20)
		case "MEMORY_SPILL_RATIO":
			// Unlike the other knobs this one is validated strictly: a typo
			// silently defaulting would silently mis-size the spill budget
			// of every query in the group. 0 is rejected too — on a group
			// def 0 means "inherit the cluster default", so accepting it
			// would silently NOT disable spilling; disabling is a session
			// (SET memory_spill_ratio 0) or cluster (negative
			// Config.MemorySpillRatio) decision.
			v, err := strconv.Atoi(opt.Value)
			if err != nil || v < 1 || v > 100 {
				return fmt.Errorf("core: MEMORY_SPILL_RATIO must be an integer between 1 and 100 (got %q); to disable spilling use SET memory_spill_ratio 0", opt.Value)
			}
			def.MemSpillRatio = v
		default:
			return fmt.Errorf("core: unknown resource group option %q", opt.Name)
		}
	}
	return e.cluster.ApplyCreateResourceGroup(def)
}

func atoiDefault(s string, def int) int {
	n := 0
	neg := false
	for i, ch := range s {
		if i == 0 && ch == '-' {
			neg = true
			continue
		}
		if ch < '0' || ch > '9' {
			return def
		}
		n = n*10 + int(ch-'0')
	}
	if neg {
		n = -n
	}
	return n
}
