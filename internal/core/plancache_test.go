package core

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/cluster"
	"repro/internal/types"
)

func TestNormalizeSQL(t *testing.T) {
	cases := []struct{ in, want string }{
		{"SELECT 1", "select 1"},
		{"  SELECT\n\t1  ;  ", "select 1"},
		{"select A, B from T where A = 1", "select a, b from t where a = 1"},
		// Literals keep their exact bytes — including case and whitespace.
		{"SELECT 'It''s  UPPER'", "select 'It''s  UPPER'"},
		{"SELECT 'a'  ||  'B'", "select 'a' || 'B'"},
		{"SELECT\r\n1", "select 1"},
	}
	for _, c := range cases {
		if got := normalizeSQL(c.in); got != c.want {
			t.Errorf("normalizeSQL(%q) = %q, want %q", c.in, got, c.want)
		}
	}
	// Equivalent spellings share a cache key; different literals do not.
	if normalizeSQL("SELECT a FROM t") != normalizeSQL("select   a\nfrom T;") {
		t.Error("equivalent statements got different keys")
	}
	if normalizeSQL("SELECT 'x'") == normalizeSQL("SELECT 'X'") {
		t.Error("distinct literals collided")
	}
}

func TestStmtCacheParseReuse(t *testing.T) {
	e, s := newTestEngine(t, 2)
	mustExec(t, s, "CREATE TABLE pc (a int, b int) DISTRIBUTED BY (a)")
	mustExec(t, s, "INSERT INTO pc VALUES (1, 10), (2, 20)")

	base := e.StmtCache().Stats()
	for i := 0; i < 10; i++ {
		mustExec(t, s, "SELECT b FROM pc WHERE a = 1")
	}
	st := e.StmtCache().Stats()
	if hits := st.Hits - base.Hits; hits != 9 {
		t.Fatalf("10 identical statements: %d parse hits, want 9", hits)
	}
	// A second session shares the same cache.
	s2, err := e.NewSession("")
	if err != nil {
		t.Fatal(err)
	}
	mustExec2 := func(q string) {
		if _, err := s2.Exec(context.Background(), q); err != nil {
			t.Fatalf("%s: %v", q, err)
		}
	}
	pre := e.StmtCache().Stats()
	mustExec2("SELECT b FROM pc WHERE a = 1")
	if st := e.StmtCache().Stats(); st.Hits != pre.Hits+1 {
		t.Fatal("cache not shared across sessions")
	}
	// Case/whitespace variants of the same statement share the entry.
	pre = e.StmtCache().Stats()
	mustExec2("select   B from PC where a = 1")
	if st := e.StmtCache().Stats(); st.Hits != pre.Hits+1 {
		t.Fatal("normalized variant missed the cache")
	}
}

// TestPlanCacheInvalidation is the correctness satellite: cached plans must
// be dropped by ANALYZE, by DDL, and by planner-setting changes — each of
// which can change the right plan for the same SQL text.
func TestPlanCacheInvalidation(t *testing.T) {
	e, s := newTestEngine(t, 2)
	ctx := context.Background()
	mustExec(t, s, "CREATE TABLE big (a int, b int) DISTRIBUTED BY (a)")
	mustExec(t, s, "CREATE TABLE small (a int, c int) DISTRIBUTED BY (a)")
	for i := 0; i < 30; i++ {
		mustExec(t, s, fmt.Sprintf("INSERT INTO big VALUES (%d, %d)", i, i))
	}
	mustExec(t, s, "INSERT INTO small VALUES (1, 100), (2, 200)")

	const q = "SELECT count(*) FROM big, small WHERE big.a = small.a"
	planDelta := func(f func()) (hits, misses int64) {
		before := e.StmtCache().Stats()
		f()
		after := e.StmtCache().Stats()
		return after.PlanHits - before.PlanHits, after.PlanMisses - before.PlanMisses
	}

	// Cold: one plan miss. Warm: pure plan hits.
	if _, misses := planDelta(func() { mustExec(t, s, q) }); misses != 1 {
		t.Fatalf("cold run: %d plan misses, want 1", misses)
	}
	if hits, misses := planDelta(func() { mustExec(t, s, q); mustExec(t, s, q) }); hits != 2 || misses != 0 {
		t.Fatalf("warm runs: %d hits/%d misses, want 2/0", hits, misses)
	}

	// ANALYZE bumps the epoch: the next execution must re-plan.
	mustExec(t, s, "ANALYZE")
	if hits, misses := planDelta(func() { mustExec(t, s, q) }); hits != 0 || misses != 1 {
		t.Fatalf("after ANALYZE: %d hits/%d misses, want 0/1", hits, misses)
	}

	// DDL bumps it too — via CREATE TABLE...
	mustExec(t, s, "CREATE TABLE unrelated (x int) DISTRIBUTED BY (x)")
	if _, misses := planDelta(func() { mustExec(t, s, q) }); misses != 1 {
		t.Fatalf("after CREATE TABLE: want a re-plan, got %d misses", misses)
	}
	// ...and DROP TABLE.
	mustExec(t, s, "DROP TABLE unrelated")
	if _, misses := planDelta(func() { mustExec(t, s, q) }); misses != 1 {
		t.Fatalf("after DROP TABLE: want a re-plan, got %d misses", misses)
	}

	// Planner settings are part of the key: flipping one re-plans, flipping
	// it back reuses the still-cached plan for the old fingerprint.
	mustExec(t, s, q) // warm current fingerprint
	mustExec(t, s, "SET enable_costopt = off")
	if _, misses := planDelta(func() { mustExec(t, s, q) }); misses != 1 {
		t.Fatalf("after SET enable_costopt: want a re-plan, got %d misses", misses)
	}
	mustExec(t, s, "SET enable_costopt = on")
	if hits, _ := planDelta(func() { mustExec(t, s, q) }); hits != 1 {
		t.Fatal("flipping the setting back should hit the cached plan again")
	}

	// Correctness under DDL churn: drop and recreate a referenced table
	// with different contents — the cached plan must not resurrect stale
	// catalog state.
	res := mustExec(t, s, "SELECT count(*) FROM small")
	if res.Rows[0][0].Int() != 2 {
		t.Fatalf("precondition: %v", res.Rows)
	}
	mustExec(t, s, "DROP TABLE small")
	mustExec(t, s, "CREATE TABLE small (a int, c int) DISTRIBUTED BY (a)")
	mustExec(t, s, "INSERT INTO small VALUES (9, 900)")
	res = mustExec(t, s, "SELECT count(*) FROM small")
	if res.Rows[0][0].Int() != 1 {
		t.Fatalf("stale plan after DROP/CREATE: %v", res.Rows)
	}
	if _, err := s.Exec(ctx, "SELECT c FROM dropped_table"); err == nil {
		t.Fatal("nonexistent table accepted")
	}
}

// TestPlanCacheParamsNotCached pins the design constraint that makes plan
// caching safe at all: the binder folds $N values into the plan as
// constants, so parameterized statements must never share plans.
func TestPlanCacheParamsNotCached(t *testing.T) {
	e, s := newTestEngine(t, 2)
	mustExec(t, s, "CREATE TABLE pp (a int, b int) DISTRIBUTED BY (a)")
	mustExec(t, s, "INSERT INTO pp VALUES (1, 10), (2, 20), (3, 30)")

	before := e.StmtCache().Stats()
	for want := 1; want <= 3; want++ {
		res := mustExec(t, s, "SELECT b FROM pp WHERE a = $1", types.NewInt(int64(want)))
		if len(res.Rows) != 1 || res.Rows[0][0].Int() != int64(want*10) {
			t.Fatalf("param %d: %v", want, res.Rows)
		}
	}
	after := e.StmtCache().Stats()
	if after.PlanHits != before.PlanHits {
		t.Fatalf("parameterized statements took plan-cache hits (%d) — stale constants",
			after.PlanHits-before.PlanHits)
	}
	if after.Hits-before.Hits != 2 {
		t.Fatalf("parameterized statements should still share the parse: %d hits", after.Hits-before.Hits)
	}
}

func TestPlanCacheEvictionAndDisable(t *testing.T) {
	cfg := cluster.GPDB6(2)
	cfg.PlanCacheSize = 4
	e := NewEngine(cfg)
	t.Cleanup(e.Close)
	s, err := e.NewSession("")
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, s, "CREATE TABLE ev (a int) DISTRIBUTED BY (a)")
	for i := 0; i < 20; i++ {
		mustExec(t, s, fmt.Sprintf("SELECT a FROM ev WHERE a = %d", i))
	}
	st := e.StmtCache().Stats()
	if st.Entries > 4 {
		t.Fatalf("cache grew past capacity: %d entries", st.Entries)
	}
	if st.Evictions == 0 {
		t.Fatal("no evictions despite overflow")
	}

	// Negative capacity disables caching entirely; execution still works.
	cfg2 := cluster.GPDB6(2)
	cfg2.PlanCacheSize = -1
	e2 := NewEngine(cfg2)
	t.Cleanup(e2.Close)
	s2, err := e2.NewSession("")
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, s2, "CREATE TABLE nv (a int) DISTRIBUTED BY (a)")
	mustExec(t, s2, "SELECT a FROM nv")
	mustExec(t, s2, "SELECT a FROM nv")
	if st := e2.StmtCache().Stats(); st.Hits != 0 || st.Entries != 0 {
		t.Fatalf("disabled cache still caching: %+v", st)
	}
}

func TestShowPlanCache(t *testing.T) {
	_, s := newTestEngine(t, 2)
	mustExec(t, s, "CREATE TABLE sh (a int) DISTRIBUTED BY (a)")
	mustExec(t, s, "SELECT a FROM sh")
	mustExec(t, s, "SELECT a FROM sh")
	res := mustExec(t, s, "SHOW plan_cache")
	if len(res.Rows) == 0 || len(res.Columns) == 0 {
		t.Fatal("SHOW plan_cache returned nothing")
	}
	found := false
	for _, row := range res.Rows {
		if row[0].String() == "hits" && row[1].Int() >= 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("SHOW plan_cache missing hit counter: %v", res.Rows)
	}
}
