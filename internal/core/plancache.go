package core

import (
	"container/list"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/plan"
	"repro/internal/sql"
)

// StmtCache is the engine-wide shared parse/plan cache. Parsing dominates
// the SQL-level benches, so every session — embedded and network alike —
// resolves statement text through here before touching the lexer: the
// parsed AST is cached under the normalized SQL text in a bounded LRU, and
// the AST is shared read-only by all sessions (the binder never mutates
// it). Param-free SELECT plans are cached alongside their AST, keyed by the
// cluster's catalog/stats epoch plus the session's planner-relevant
// settings, so DDL, ANALYZE and SET enable_costopt-style changes each force
// a re-plan without any explicit invalidation hooks. Parameterized
// statements re-plan per execution (the binder folds $N values into the
// plan as constants) but still skip the parse.
type StmtCache struct {
	mu      sync.Mutex
	cap     int
	lru     *list.List               // of *stmtEntry; front = most recent
	entries map[string]*list.Element // normalized SQL → element

	hits       atomic.Int64 // parse-level lookups answered from cache
	misses     atomic.Int64 // parse-level lookups that ran the parser
	planHits   atomic.Int64 // plan-level lookups answered from cache
	planMisses atomic.Int64 // plan-level lookups that ran the planner
	evictions  atomic.Int64
}

// stmtEntry is one cached statement: the shared parsed AST, its String()
// form (the misestimate/plan key, computed once), and any cached plans.
type stmtEntry struct {
	key  string
	stmt sql.Statement
	str  string

	planMu sync.Mutex
	plans  map[string]*plan.Planned
}

// NewStmtCache builds a cache bounded to capacity statements; capacity < 0
// disables caching (every lookup parses).
func NewStmtCache(capacity int) *StmtCache {
	return &StmtCache{
		cap:     capacity,
		lru:     list.New(),
		entries: make(map[string]*list.Element),
	}
}

// StmtCacheStats is a counter snapshot.
type StmtCacheStats struct {
	// Hits/Misses are parse-level: a hit skipped the lexer+parser.
	Hits, Misses int64
	// PlanHits/PlanMisses are plan-level (param-free SELECTs only): a hit
	// skipped the planner.
	PlanHits, PlanMisses int64
	Evictions            int64
	Entries              int
}

// HitRate is hits over lookups at the parse level (0 when idle).
func (s StmtCacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Stats snapshots the counters.
func (c *StmtCache) Stats() StmtCacheStats {
	c.mu.Lock()
	n := len(c.entries)
	c.mu.Unlock()
	return StmtCacheStats{
		Hits:       c.hits.Load(),
		Misses:     c.misses.Load(),
		PlanHits:   c.planHits.Load(),
		PlanMisses: c.planMisses.Load(),
		Evictions:  c.evictions.Load(),
		Entries:    n,
	}
}

// parse returns the shared parsed statement for sqlText, running the
// parser and inserting on miss. The returned entry is nil when caching is
// disabled or the text failed to parse.
func (c *StmtCache) parse(sqlText string) (sql.Statement, *stmtEntry, error) {
	if c == nil || c.cap < 0 {
		st, err := sql.Parse(sqlText)
		return st, nil, err
	}
	key := normalizeSQL(sqlText)
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.lru.MoveToFront(el)
		e := el.Value.(*stmtEntry)
		c.mu.Unlock()
		c.hits.Add(1)
		return e.stmt, e, nil
	}
	c.mu.Unlock()
	c.misses.Add(1)
	st, err := sql.Parse(sqlText)
	if err != nil {
		return nil, nil, err
	}
	e := &stmtEntry{key: key, stmt: st, str: st.String()}
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		// Raced another session parsing the same text; keep the first.
		c.lru.MoveToFront(el)
		e = el.Value.(*stmtEntry)
	} else {
		c.entries[key] = c.lru.PushFront(e)
		for len(c.entries) > c.cap && c.cap > 0 {
			back := c.lru.Back()
			c.lru.Remove(back)
			delete(c.entries, back.Value.(*stmtEntry).key)
			c.evictions.Add(1)
		}
	}
	c.mu.Unlock()
	return e.stmt, e, nil
}

// lookupPlan returns the cached plan for planKey, or nil.
func (e *stmtEntry) lookupPlan(c *StmtCache, planKey string) *plan.Planned {
	e.planMu.Lock()
	pl := e.plans[planKey]
	e.planMu.Unlock()
	if pl != nil {
		c.planHits.Add(1)
	} else {
		c.planMisses.Add(1)
	}
	return pl
}

// storePlan caches a freshly built plan, dropping plans from other epochs
// (they can never be looked up again — their epoch is gone for good).
func (e *stmtEntry) storePlan(planKey string, pl *plan.Planned) {
	epoch, _, _ := strings.Cut(planKey, "|")
	e.planMu.Lock()
	if e.plans == nil {
		e.plans = make(map[string]*plan.Planned)
	}
	for k := range e.plans {
		if ep, _, _ := strings.Cut(k, "|"); ep != epoch {
			delete(e.plans, k)
		}
	}
	e.plans[planKey] = pl
	e.planMu.Unlock()
}

// planFingerprint builds the plan-cache key: the catalog/stats epoch first
// (storePlan prunes on it), then every session setting that changes plan
// shape. Two sessions with identical settings share plans.
func planFingerprint(epoch uint64, p *plan.Planner, robust bool) string {
	return fmt.Sprintf("%d|%s|%d|%t|%t|%d|%t",
		epoch, p.Optimizer, p.Parallelism, p.Pushdown, p.CostOpt,
		p.BroadcastThreshold, robust)
}

// normalizeSQL canonicalizes statement text for cache keying: whitespace
// runs collapse to one space, everything outside single-quoted strings is
// case-folded (this engine's identifiers are case-insensitive), and
// trailing semicolons/space are trimmed. Literals keep their exact bytes, so
// two statements differing only in a quoted value stay distinct keys.
func normalizeSQL(s string) string {
	var b strings.Builder
	b.Grow(len(s))
	inStr := false
	lastSpace := true // leading whitespace collapses into nothing
	for i := 0; i < len(s); i++ {
		ch := s[i]
		if inStr {
			b.WriteByte(ch)
			if ch == '\'' {
				inStr = false
			}
			continue
		}
		switch {
		case ch == '\'':
			inStr = true
			b.WriteByte(ch)
			lastSpace = false
		case ch == ' ' || ch == '\t' || ch == '\n' || ch == '\r':
			if !lastSpace {
				b.WriteByte(' ')
				lastSpace = true
			}
		default:
			if ch >= 'A' && ch <= 'Z' {
				ch += 'a' - 'A'
			}
			b.WriteByte(ch)
			lastSpace = false
		}
	}
	return strings.TrimRight(b.String(), "; ")
}
