package core

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/cluster"
	"repro/internal/types"
)

func newTestEngine(t *testing.T, nseg int) (*Engine, *Session) {
	t.Helper()
	cfg := cluster.GPDB6(nseg)
	cfg.GDDPeriod = 5e6 // 5ms
	e := NewEngine(cfg)
	t.Cleanup(e.Close)
	s, err := e.NewSession("")
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	return e, s
}

func mustExec(t *testing.T, s *Session, q string, params ...types.Datum) *Result {
	t.Helper()
	res, err := s.Exec(context.Background(), q, params...)
	if err != nil {
		t.Fatalf("Exec(%q): %v", q, err)
	}
	return res
}

func TestBasicCRUD(t *testing.T) {
	_, s := newTestEngine(t, 3)
	ctx := context.Background()

	mustExec(t, s, "CREATE TABLE t (c1 int, c2 int) DISTRIBUTED BY (c1)")
	mustExec(t, s, "INSERT INTO t VALUES (1, 10), (2, 20), (3, 30), (4, 40)")

	res := mustExec(t, s, "SELECT c1, c2 FROM t ORDER BY c1")
	if len(res.Rows) != 4 {
		t.Fatalf("got %d rows, want 4: %v", len(res.Rows), res.Rows)
	}
	if res.Rows[0][0].Int() != 1 || res.Rows[3][1].Int() != 40 {
		t.Fatalf("bad rows: %v", res.Rows)
	}

	res = mustExec(t, s, "UPDATE t SET c2 = c2 + 1 WHERE c1 = 2")
	if res.RowsAffected != 1 {
		t.Fatalf("update affected %d, want 1", res.RowsAffected)
	}
	res = mustExec(t, s, "SELECT c2 FROM t WHERE c1 = 2")
	if len(res.Rows) != 1 || res.Rows[0][0].Int() != 21 {
		t.Fatalf("after update: %v", res.Rows)
	}

	res = mustExec(t, s, "DELETE FROM t WHERE c1 >= 3")
	if res.RowsAffected != 2 {
		t.Fatalf("delete affected %d, want 2", res.RowsAffected)
	}
	res = mustExec(t, s, "SELECT count(*) FROM t")
	if res.Rows[0][0].Int() != 2 {
		t.Fatalf("count after delete: %v", res.Rows)
	}
	_ = ctx
}

func TestJoinAcrossSegments(t *testing.T) {
	_, s := newTestEngine(t, 3)
	mustExec(t, s, "CREATE TABLE student (id int, name text) DISTRIBUTED BY (id)")
	mustExec(t, s, "CREATE TABLE class (id int, name text) DISTRIBUTED RANDOMLY")
	for i := 1; i <= 20; i++ {
		mustExec(t, s, fmt.Sprintf("INSERT INTO student VALUES (%d, 's%d')", i, i))
		mustExec(t, s, fmt.Sprintf("INSERT INTO class VALUES (%d, 'c%d')", i, i))
	}
	res := mustExec(t, s, "SELECT s.id, s.name, c.name FROM student s JOIN class c ON s.id = c.id ORDER BY s.id")
	if len(res.Rows) != 20 {
		t.Fatalf("join rows = %d, want 20", len(res.Rows))
	}
	if res.Rows[4][1].Text() != "s5" || res.Rows[4][2].Text() != "c5" {
		t.Fatalf("bad join row: %v", res.Rows[4])
	}
}

func TestAggregation(t *testing.T) {
	_, s := newTestEngine(t, 3)
	mustExec(t, s, "CREATE TABLE sales (id int, region text, amt float) DISTRIBUTED BY (id)")
	regions := []string{"east", "west"}
	for i := 0; i < 30; i++ {
		mustExec(t, s, fmt.Sprintf("INSERT INTO sales VALUES (%d, '%s', %d.5)", i, regions[i%2], i))
	}
	res := mustExec(t, s, "SELECT region, count(*), sum(amt), avg(amt), min(amt), max(amt) FROM sales GROUP BY region ORDER BY region")
	if len(res.Rows) != 2 {
		t.Fatalf("groups = %d, want 2: %v", len(res.Rows), res.Rows)
	}
	east := res.Rows[0]
	if east[0].Text() != "east" || east[1].Int() != 15 {
		t.Fatalf("east row: %v", east)
	}
	// east amts: 0.5, 2.5, ..., 28.5 → sum = 15*0.5 + 2*(0+1+..14) = 7.5+210 = 217.5
	if east[2].Float() != 217.5 {
		t.Fatalf("east sum = %v, want 217.5", east[2])
	}
	if east[4].Float() != 0.5 || east[5].Float() != 28.5 {
		t.Fatalf("east min/max: %v", east)
	}
}

func TestExplicitTransactionRollback(t *testing.T) {
	_, s := newTestEngine(t, 2)
	mustExec(t, s, "CREATE TABLE t (c1 int, c2 int) DISTRIBUTED BY (c1)")
	mustExec(t, s, "INSERT INTO t VALUES (1, 1)")
	mustExec(t, s, "BEGIN")
	mustExec(t, s, "UPDATE t SET c2 = 99 WHERE c1 = 1")
	mustExec(t, s, "ROLLBACK")
	res := mustExec(t, s, "SELECT c2 FROM t WHERE c1 = 1")
	if res.Rows[0][0].Int() != 1 {
		t.Fatalf("rollback did not undo update: %v", res.Rows)
	}
}

func TestSnapshotIsolationBetweenSessions(t *testing.T) {
	e, s1 := newTestEngine(t, 2)
	s2, err := e.NewSession("")
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	mustExec(t, s1, "CREATE TABLE t (c1 int, c2 int) DISTRIBUTED BY (c1)")
	mustExec(t, s1, "INSERT INTO t VALUES (1, 1)")

	mustExec(t, s1, "BEGIN")
	mustExec(t, s1, "UPDATE t SET c2 = 42 WHERE c1 = 1")

	// Uncommitted change must be invisible to session 2.
	res, err := s2.Exec(ctx, "SELECT c2 FROM t WHERE c1 = 1")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Int() != 1 {
		t.Fatalf("dirty read: %v", res.Rows)
	}

	mustExec(t, s1, "COMMIT")
	res, err = s2.Exec(ctx, "SELECT c2 FROM t WHERE c1 = 1")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Int() != 42 {
		t.Fatalf("committed change invisible: %v", res.Rows)
	}
}

func TestInsertSelect(t *testing.T) {
	_, s := newTestEngine(t, 3)
	mustExec(t, s, "CREATE TABLE a (c1 int, c2 int) DISTRIBUTED BY (c1)")
	mustExec(t, s, "CREATE TABLE b (c1 int, c2 int) DISTRIBUTED BY (c1)")
	for i := 0; i < 10; i++ {
		mustExec(t, s, fmt.Sprintf("INSERT INTO a VALUES (%d, %d)", i, i*i))
	}
	res := mustExec(t, s, "INSERT INTO b SELECT c1, c2 FROM a WHERE c1 < 5")
	if res.RowsAffected != 5 {
		t.Fatalf("insert-select affected %d, want 5", res.RowsAffected)
	}
	res = mustExec(t, s, "SELECT count(*) FROM b")
	if res.Rows[0][0].Int() != 5 {
		t.Fatalf("b count: %v", res.Rows)
	}
}

func TestParams(t *testing.T) {
	_, s := newTestEngine(t, 2)
	mustExec(t, s, "CREATE TABLE t (c1 int, c2 text) DISTRIBUTED BY (c1)")
	mustExec(t, s, "INSERT INTO t VALUES ($1, $2)", types.NewInt(7), types.NewText("seven"))
	res := mustExec(t, s, "SELECT c2 FROM t WHERE c1 = $1", types.NewInt(7))
	if len(res.Rows) != 1 || res.Rows[0][0].Text() != "seven" {
		t.Fatalf("param roundtrip: %v", res.Rows)
	}
}

func TestExplain(t *testing.T) {
	_, s := newTestEngine(t, 2)
	mustExec(t, s, "CREATE TABLE t (c1 int, c2 int) DISTRIBUTED BY (c1)")
	res := mustExec(t, s, "EXPLAIN SELECT * FROM t WHERE c2 > 5")
	if len(res.Rows) == 0 {
		t.Fatal("empty explain")
	}
	found := false
	for _, r := range res.Rows {
		if containsStr(r[0].Text(), "Gather Motion") {
			found = true
		}
	}
	if !found {
		t.Fatalf("explain lacks gather motion: %v", res.Rows)
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
