package core

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/lockmgr"
	"repro/internal/types"
)

// keyOnSegment finds a small int key whose hash routes to the wanted
// segment under nseg segments.
func keyOnSegment(nseg, want int) int {
	for k := 1; k < 100000; k++ {
		row := types.Row{types.NewInt(int64(k))}
		if int(row.Hash([]int{0})%uint64(nseg)) == want {
			return k
		}
	}
	panic("no key found")
}

// step runs a statement on a session in a goroutine, reporting completion.
type step struct {
	err  error
	done chan struct{}
}

func goExec(s *Session, q string) *step {
	st := &step{done: make(chan struct{})}
	go func() {
		defer close(st.done)
		_, st.err = s.Exec(context.Background(), q)
	}()
	return st
}

func (st *step) wait(t *testing.T, d time.Duration) error {
	t.Helper()
	select {
	case <-st.done:
		return st.err
	case <-time.After(d):
		t.Fatal("statement did not finish in time")
		return nil
	}
}

func (st *step) blocked(t *testing.T, d time.Duration) bool {
	select {
	case <-st.done:
		return false
	case <-time.After(d):
		return true
	}
}

// TestLiveGlobalDeadlockCase1 drives the paper's Figure 6 scenario through
// real SQL on a 2-segment cluster with GDD enabled: two transactions update
// rows on opposite segments in opposite orders; the daemon must kill the
// younger transaction and let the older one finish.
func TestLiveGlobalDeadlockCase1(t *testing.T) {
	e, admin := newTestEngine(t, 2)
	k0 := keyOnSegment(2, 0)
	k1 := keyOnSegment(2, 1)
	mustExec(t, admin, "CREATE TABLE t1 (c1 int, c2 int) DISTRIBUTED BY (c1)")
	mustExec(t, admin, fmt.Sprintf("INSERT INTO t1 VALUES (%d, 1), (%d, 2)", k0, k1))

	sa, _ := e.NewSession("")
	sb, _ := e.NewSession("")
	mustExec(t, sa, "BEGIN")
	mustExec(t, sb, "BEGIN")

	// (1) A updates the row on segment 0.
	mustExec(t, sa, fmt.Sprintf("UPDATE t1 SET c2 = 10 WHERE c1 = %d", k0))
	// (2) B updates the row on segment 1.
	mustExec(t, sb, fmt.Sprintf("UPDATE t1 SET c2 = 20 WHERE c1 = %d", k1))
	// (3) B updates A's row: blocks on segment 0.
	stB := goExec(sb, fmt.Sprintf("UPDATE t1 SET c2 = 21 WHERE c1 = %d", k0))
	if !stB.blocked(t, 50*time.Millisecond) {
		t.Fatal("B should be blocked by A")
	}
	// (4) A updates B's row: blocks on segment 1 → global deadlock.
	stA := goExec(sa, fmt.Sprintf("UPDATE t1 SET c2 = 11 WHERE c1 = %d", k1))

	// GDD must break it: B is younger (began later), so B dies.
	errB := stB.wait(t, 5*time.Second)
	errA := stA.wait(t, 5*time.Second)
	if errB == nil {
		t.Fatalf("B should have been killed as the deadlock victim (A err: %v)", errA)
	}
	if !errors.Is(errB, lockmgr.ErrDeadlockVictim) {
		t.Fatalf("B error = %v, want deadlock victim", errB)
	}
	if errA != nil {
		t.Fatalf("A should proceed after victim kill, got: %v", errA)
	}
	mustExec(t, sa, "COMMIT")

	// B's transaction was aborted; its session must report that until
	// rollback, and its first update must not have applied.
	if _, err := sb.Exec(context.Background(), "SELECT 1"); !errors.Is(err, ErrTxnAborted) {
		t.Fatalf("B's txn should be aborted, got: %v", err)
	}
	mustExec(t, sb, "ROLLBACK")
	res := mustExec(t, admin, fmt.Sprintf("SELECT c2 FROM t1 WHERE c1 = %d", k1))
	if res.Rows[0][0].Int() != 11 {
		t.Fatalf("k1 row = %v, want A's value 11", res.Rows)
	}

	_, deadlocks, victims, _ := e.Cluster().GDDStats()
	if deadlocks < 1 || victims < 1 {
		t.Fatalf("daemon stats: deadlocks=%d victims=%d", deadlocks, victims)
	}
}

// TestLiveNonDeadlockFigure8 drives the paper's Figure 8: B updates rows on
// both segments in one statement while A and C hold one each; this wait
// pattern contains a cycle-looking shape with a dotted edge but is NOT a
// deadlock, and must resolve by itself once C commits.
func TestLiveNonDeadlockFigure8(t *testing.T) {
	e, admin := newTestEngine(t, 2)
	k0 := keyOnSegment(2, 0) // paper's c1=3 on seg0
	k1 := keyOnSegment(2, 1) // paper's c1=1 on seg1
	mustExec(t, admin, "CREATE TABLE t1 (c1 int, c2 int) DISTRIBUTED BY (c1)")
	mustExec(t, admin, fmt.Sprintf("INSERT INTO t1 VALUES (%d, 3), (%d, 1)", k0, k1))

	sa, _ := e.NewSession("")
	sb, _ := e.NewSession("")
	sc, _ := e.NewSession("")
	mustExec(t, sa, "BEGIN")
	mustExec(t, sb, "BEGIN")
	mustExec(t, sc, "BEGIN")

	// (1) A locks k0 on segment 0.
	mustExec(t, sa, fmt.Sprintf("UPDATE t1 SET c2 = 10 WHERE c1 = %d", k0))
	// (2) C locks k1 on segment 1.
	mustExec(t, sc, fmt.Sprintf("UPDATE t1 SET c2 = 30 WHERE c1 = %d", k1))
	// (3) B updates both rows: blocked by A on seg0 and C on seg1.
	stB := goExec(sb, fmt.Sprintf("UPDATE t1 SET c2 = 20 WHERE c1 = %d OR c1 = %d", k0, k1))
	if !stB.blocked(t, 50*time.Millisecond) {
		t.Fatal("B should be blocked")
	}
	// (4) A updates k1: waits behind B's tuple lock / C's transaction lock.
	stA := goExec(sa, fmt.Sprintf("UPDATE t1 SET c2 = 11 WHERE c1 = %d", k1))
	if !stA.blocked(t, 100*time.Millisecond) {
		t.Fatal("A should be blocked")
	}

	// Give the daemon several periods: it must NOT kill anyone while the
	// graph matches Figure 8 — the dotted edge A→B is removable because B
	// is only blocked on the *other* segment, so C can still commit and
	// unblock everything (this is exactly what the paper's Figure 9
	// reduction proves).
	time.Sleep(150 * time.Millisecond)
	if v := e.Cluster().DeadlockVictims(); v != 0 {
		t.Fatalf("GDD killed %d transactions in a non-deadlock scenario", v)
	}

	// Unwind: C commits. B then stamps the row C released — at which point
	// A's wait hardens into a solid edge on B's transaction lock while B
	// still waits for A on segment 0. That IS a genuine A↔B deadlock (the
	// paper's figure only claims the pre-commit state is safe), so GDD must
	// now kill the younger of the two (B) and let A finish.
	mustExec(t, sc, "COMMIT")
	errB := stB.wait(t, 5*time.Second)
	errA := stA.wait(t, 5*time.Second)
	if errB == nil && errA == nil {
		// Also acceptable: B finished before A's wait hardened.
		mustExec(t, sb, "COMMIT")
		mustExec(t, sa, "COMMIT")
		return
	}
	if errB == nil || errA != nil {
		t.Fatalf("expected B to be the victim of the post-commit deadlock; A err=%v B err=%v", errA, errB)
	}
	if !errors.Is(errB, lockmgr.ErrDeadlockVictim) {
		t.Fatalf("B error = %v, want deadlock victim", errB)
	}
	mustExec(t, sb, "ROLLBACK")
	mustExec(t, sa, "COMMIT")
}

// TestLiveLockTableDeadlockFigure7 drives the paper's Figure 7 flavour:
// a LOCK TABLE statement enters the cycle through the coordinator.
func TestLiveLockTableDeadlockFigure7(t *testing.T) {
	e, admin := newTestEngine(t, 2)
	k0 := keyOnSegment(2, 0)
	k1 := keyOnSegment(2, 1)
	mustExec(t, admin, "CREATE TABLE t1 (c1 int, c2 int) DISTRIBUTED BY (c1)")
	mustExec(t, admin, "CREATE TABLE t2 (c1 int, c2 int) DISTRIBUTED BY (c1)")
	mustExec(t, admin, fmt.Sprintf("INSERT INTO t1 VALUES (%d, 1), (%d, 2)", k0, k1))

	sa, _ := e.NewSession("")
	sc, _ := e.NewSession("")
	mustExec(t, sa, "BEGIN")
	mustExec(t, sc, "BEGIN")

	// A locks the t1 row on seg0.
	mustExec(t, sa, fmt.Sprintf("UPDATE t1 SET c2 = 10 WHERE c1 = %d", k0))
	// C takes LOCK TABLE t2 everywhere.
	mustExec(t, sc, "LOCK t2")
	// C then tries to update A's row: blocks.
	stC := goExec(sc, fmt.Sprintf("UPDATE t1 SET c2 = 30 WHERE c1 = %d", k0))
	if !stC.blocked(t, 50*time.Millisecond) {
		t.Fatal("C should be blocked by A")
	}
	// A tries LOCK TABLE t2: blocks on C → cycle A→C→A.
	stA := goExec(sa, "LOCK t2")

	errA := stA.wait(t, 5*time.Second)
	errC := stC.wait(t, 5*time.Second)
	// One of the two must die (the younger: C began after A).
	if errA == nil && errC == nil {
		t.Fatal("deadlock not broken")
	}
	dead := errC
	if errC == nil {
		dead = errA
	}
	if !errors.Is(dead, lockmgr.ErrDeadlockVictim) {
		t.Fatalf("victim error = %v", dead)
	}
}

// TestGPDB5SerializesUpdates pins the baseline behaviour: without GDD,
// UPDATEs on the same table take Exclusive coordinator locks and cannot
// run concurrently, even on different rows (paper §4.2).
func TestGPDB5SerializesUpdates(t *testing.T) {
	cfg := cluster.GPDB5(2)
	e := NewEngine(cfg)
	t.Cleanup(e.Close)
	admin, _ := e.NewSession("")
	k0 := keyOnSegment(2, 0)
	k1 := keyOnSegment(2, 1)
	mustExec(t, admin, "CREATE TABLE t1 (c1 int, c2 int) DISTRIBUTED BY (c1)")
	mustExec(t, admin, fmt.Sprintf("INSERT INTO t1 VALUES (%d, 1), (%d, 2)", k0, k1))

	s1, _ := e.NewSession("")
	s2, _ := e.NewSession("")
	mustExec(t, s1, "BEGIN")
	mustExec(t, s1, fmt.Sprintf("UPDATE t1 SET c2 = 10 WHERE c1 = %d", k0))

	// Different row, same table: must block in GPDB5 mode.
	st := goExec(s2, fmt.Sprintf("UPDATE t1 SET c2 = 20 WHERE c1 = %d", k1))
	if !st.blocked(t, 100*time.Millisecond) {
		t.Fatal("GPDB5 must serialize updates on the same table")
	}
	mustExec(t, s1, "COMMIT")
	if err := st.wait(t, 5*time.Second); err != nil {
		t.Fatalf("second update: %v", err)
	}
}

// TestGPDB6ConcurrentUpdatesDifferentRows pins the headline improvement:
// with GDD, updates to different rows of the same table proceed in
// parallel.
func TestGPDB6ConcurrentUpdatesDifferentRows(t *testing.T) {
	e, admin := newTestEngine(t, 2)
	k0 := keyOnSegment(2, 0)
	k1 := keyOnSegment(2, 1)
	mustExec(t, admin, "CREATE TABLE t1 (c1 int, c2 int) DISTRIBUTED BY (c1)")
	mustExec(t, admin, fmt.Sprintf("INSERT INTO t1 VALUES (%d, 1), (%d, 2)", k0, k1))

	s1, _ := e.NewSession("")
	s2, _ := e.NewSession("")
	mustExec(t, s1, "BEGIN")
	mustExec(t, s1, fmt.Sprintf("UPDATE t1 SET c2 = 10 WHERE c1 = %d", k0))

	// Different row: must NOT block with GDD enabled.
	st := goExec(s2, fmt.Sprintf("UPDATE t1 SET c2 = 20 WHERE c1 = %d", k1))
	if err := st.wait(t, 2*time.Second); err != nil {
		t.Fatalf("concurrent update: %v", err)
	}
	mustExec(t, s1, "COMMIT")

	res := mustExec(t, admin, "SELECT c2 FROM t1 ORDER BY c2")
	got := []string{res.Rows[0][0].String(), res.Rows[1][0].String()}
	if strings.Join(got, ",") != "10,20" {
		t.Fatalf("rows after both updates: %v", got)
	}
}
