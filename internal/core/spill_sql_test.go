package core

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/cluster"
)

// spillTestConfig sizes a cluster so a constrained resource group's spill
// budget is tiny (slot quota 3.2 MiB × 1% = 32 KiB) while the default groups
// stay functional.
func spillTestConfig(nseg, dop int) *cluster.Config {
	cfg := cluster.GPDB6(nseg)
	cfg.MemoryBytes = 32 << 20
	cfg.BlockCacheBytes = 1 << 20
	cfg.ExecParallelism = dop
	return cfg
}

// newSpillEngine boots an engine with a "tiny" resource group (32 KiB spill
// budget) plus a bound role, and returns constrained and unconstrained
// sessions against the same data.
func newSpillEngine(t *testing.T, nseg, dop int) (*Engine, *Session, *Session) {
	t.Helper()
	e := NewEngine(spillTestConfig(nseg, dop))
	t.Cleanup(e.Close)
	admin, err := e.NewSession("")
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, admin, "CREATE RESOURCE GROUP tiny_mem WITH (CONCURRENCY=1, CPU_RATE_LIMIT=20, MEMORY_LIMIT=10, MEMORY_SHARED_QUOTA=0, MEMORY_SPILL_RATIO=1)")
	mustExec(t, admin, "CREATE ROLE spiller RESOURCE GROUP tiny_mem")
	constrained, err := e.NewSession("spiller")
	if err != nil {
		t.Fatal(err)
	}
	constrained.UseResourceGroup(true, 0, 0)
	return e, constrained, admin
}

// loadSpillTables creates and fills the fact table t (6000 rows ≈ 430 KiB
// working set, ≥10× the 32 KiB budget) and the join table u.
func loadSpillTables(t *testing.T, s *Session, withJoin bool) {
	t.Helper()
	mustExec(t, s, "CREATE TABLE t (a int, b int) DISTRIBUTED BY (a)")
	bulkInsert(t, s, "t", 6000, 0, func(i int) string {
		return fmt.Sprintf("(%d,%d)", i, (i*2654435761)%100000)
	})
	if withJoin {
		mustExec(t, s, "CREATE TABLE u (c int, d int) DISTRIBUTED BY (c)")
		bulkInsert(t, s, "u", 4000, 0, func(i int) string {
			return fmt.Sprintf("(%d,%d)", i%3000, i)
		})
	}
}

// TestSpillResultEquality is the acceptance property: ORDER BY, GROUP BY and
// join queries forced to spill by a tiny budget return results byte-identical
// to the unconstrained in-memory plans, at intra-segment parallelism 1 and 4.
func TestSpillResultEquality(t *testing.T) {
	queries := []string{
		"SELECT a, b FROM t ORDER BY b, a",
		"SELECT b, count(*), sum(a), min(a), max(a), avg(a) FROM t GROUP BY b ORDER BY b",
		"SELECT t.a, t.b, u.d FROM t JOIN u ON t.a = u.c ORDER BY t.a, u.d",
		"SELECT t.a, u.d FROM t LEFT JOIN u ON t.a = u.c ORDER BY t.a, u.d",
	}
	for _, dop := range []int{1, 4} {
		t.Run(fmt.Sprintf("dop%d", dop), func(t *testing.T) {
			e, constrained, admin := newSpillEngine(t, 2, dop)
			loadSpillTables(t, admin, true)
			for _, q := range queries {
				base := mustExec(t, admin, q)
				s0, _, _, _ := e.Cluster().SpillStats()
				got := mustExec(t, constrained, q)
				s1, b1, f1, _ := e.Cluster().SpillStats()
				if s1 == s0 {
					t.Fatalf("query did not spill under the tiny budget: %s", q)
				}
				if b1 <= 0 || f1 <= 0 {
					t.Fatalf("spill bytes/files not counted: bytes=%d files=%d", b1, f1)
				}
				if len(got.Rows) != len(base.Rows) {
					t.Fatalf("%s: row counts differ: constrained=%d unconstrained=%d", q, len(got.Rows), len(base.Rows))
				}
				for i := range base.Rows {
					if !base.Rows[i].Equal(got.Rows[i]) {
						t.Fatalf("%s: row %d differs: unconstrained=%v constrained=%v", q, i, base.Rows[i], got.Rows[i])
					}
				}
			}
		})
	}
}

// spillTempDirs lists the gpspill temp directories currently on disk.
func spillTempDirs(t *testing.T) map[string]bool {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(os.TempDir(), "gpspill-*"))
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string]bool, len(matches))
	for _, m := range matches {
		out[m] = true
	}
	return out
}

// TestSpillTempFileCleanupOnError: a query that spills and then fails (a
// division by zero planted at the end of the scan) must leave no temp files
// or directories behind.
func TestSpillTempFileCleanupOnError(t *testing.T) {
	_, constrained, admin := newSpillEngine(t, 2, 1)
	loadSpillTables(t, admin, false)
	before := spillTempDirs(t)
	// Row a=5999 is inserted (and scanned) last; by then the coordinator
	// sort has spilled several 32 KiB runs.
	_, err := constrained.Exec(context.Background(), "SELECT a, b/(a-5999) FROM t ORDER BY b")
	if err == nil || !strings.Contains(err.Error(), "division by zero") {
		t.Fatalf("expected division-by-zero error, got %v", err)
	}
	for d := range spillTempDirs(t) {
		if !before[d] {
			t.Fatalf("spill temp dir leaked after query error: %s", d)
		}
	}
	// The session recovers and the next spilling query still works.
	res := mustExec(t, constrained, "SELECT count(*) FROM t")
	if res.Rows[0][0].Int() != 6000 {
		t.Fatalf("recovery count: %v", res.Rows)
	}
	for d := range spillTempDirs(t) {
		if !before[d] {
			t.Fatalf("spill temp dir leaked after recovery query: %s", d)
		}
	}
}

// TestSpillObservability: EXPLAIN ANALYZE reports nonzero spill counters for
// a constrained query, SHOW spill_stats mirrors the cumulative totals, and
// DB-level stats bound the operator-memory peak by the budget.
func TestSpillObservability(t *testing.T) {
	e, constrained, admin := newSpillEngine(t, 2, 1)
	loadSpillTables(t, admin, false)
	res := mustExec(t, constrained, "EXPLAIN ANALYZE SELECT b, count(*) FROM t GROUP BY b ORDER BY b")
	var spillLine string
	for _, r := range res.Rows {
		if strings.HasPrefix(r[0].Text(), "spill:") {
			spillLine = r[0].Text()
		}
	}
	if spillLine == "" {
		t.Fatalf("EXPLAIN ANALYZE output lacks a spill line: %v", res.Rows)
	}
	if strings.Contains(spillLine, "spills=0") {
		t.Fatalf("EXPLAIN ANALYZE reports no spills under a 32 KiB budget: %s", spillLine)
	}
	show := mustExec(t, constrained, "SHOW spill_stats")
	vals := map[string]int64{}
	for _, r := range show.Rows {
		vals[r[0].Text()] = r[1].Int()
	}
	if vals["spills"] <= 0 || vals["spill_bytes"] <= 0 || vals["spill_files"] <= 0 {
		t.Fatalf("SHOW spill_stats: %v", vals)
	}
	// The whole point: the budget-tracked operator high water stays at the
	// budget (slot quota 32 MiB × 10% × ratio 1% ≈ 33 KiB) even though the
	// working set is >10× larger, and the true resource-group vmem peak —
	// which also sees spill-chunk floors, partition reloads and the charged
	// spill-file buffers — stays bounded by those overheads (well under
	// 1 MiB here) instead of the multi-MiB working set.
	budget := int64(32<<20) / 10 / 100
	if peak := vals["spill_mem_peak"]; peak <= 0 || peak > budget {
		t.Fatalf("spill_mem_peak %d outside (0, %d]", peak, budget)
	}
	if _, _, _, peak := e.Cluster().SpillStats(); peak > budget {
		t.Fatalf("cluster-level mem peak %d exceeds budget %d", peak, budget)
	}
	if vmem := vals["vmem_peak"]; vmem <= 0 || vmem > 1<<20 {
		t.Fatalf("vmem_peak %d outside (0, 1 MiB]", vmem)
	}
	// EXPLAIN (without ANALYZE) surfaces the planner's operator estimates.
	text := explainText(t, constrained, "SELECT b, count(*) FROM t GROUP BY b ORDER BY b")
	if !strings.Contains(text, "est_mem=") {
		t.Fatalf("EXPLAIN lacks est_mem annotations:\n%s", text)
	}
}

// TestMemorySpillRatioValidation: CREATE RESOURCE GROUP rejects out-of-range
// or non-integer MEMORY_SPILL_RATIO instead of silently defaulting, and SET
// memory_spill_ratio is validated the same way.
func TestMemorySpillRatioValidation(t *testing.T) {
	_, s := newTestEngine(t, 1)
	ctx := context.Background()
	// 0 is rejected because on a group it would mean "inherit the cluster
	// default", not "disable" — the opposite of what SET memory_spill_ratio
	// 0 does; the error message points at the session knob.
	for _, bad := range []string{"101", "999", "abc", "0"} {
		_, err := s.Exec(ctx, fmt.Sprintf("CREATE RESOURCE GROUP g_%s WITH (CONCURRENCY=1, MEMORY_LIMIT=5, MEMORY_SPILL_RATIO=%s)", bad, bad))
		if err == nil || !strings.Contains(err.Error(), "MEMORY_SPILL_RATIO") {
			t.Fatalf("MEMORY_SPILL_RATIO=%s accepted (err=%v)", bad, err)
		}
	}
	mustExec(t, s, "CREATE RESOURCE GROUP g_one WITH (CONCURRENCY=1, MEMORY_LIMIT=5, MEMORY_SPILL_RATIO=1)")
	mustExec(t, s, "CREATE RESOURCE GROUP g_full WITH (CONCURRENCY=1, MEMORY_LIMIT=5, MEMORY_SPILL_RATIO=100)")
	if _, err := s.Exec(ctx, "SET memory_spill_ratio 150"); err == nil {
		t.Fatal("SET memory_spill_ratio 150 accepted")
	}
	mustExec(t, s, "SET memory_spill_ratio 35")
	res := mustExec(t, s, "SHOW memory_spill_ratio")
	if res.Rows[0][0].Text() != "35" {
		t.Fatalf("SHOW memory_spill_ratio: %v", res.Rows)
	}
}

// TestSpillDisabledWithZeroRatio: SET memory_spill_ratio 0 restores the old
// behaviour — queries that would spill under the group's tiny budget run
// fully in memory instead (until the Vmemtracker would cancel them).
func TestSpillDisabledWithZeroRatio(t *testing.T) {
	e, constrained, admin := newSpillEngine(t, 2, 1)
	loadSpillTables(t, admin, false)
	// Precondition: under the tiny budget this query spills…
	mustExec(t, constrained, "SELECT a, b FROM t ORDER BY b, a")
	s0, _, _, _ := e.Cluster().SpillStats()
	if s0 == 0 {
		t.Fatal("precondition failed: tiny budget did not spill")
	}
	// …and the session knob turns spilling off entirely.
	mustExec(t, constrained, "SET memory_spill_ratio 0")
	mustExec(t, constrained, "SELECT a, b FROM t ORDER BY b, a")
	if s1, _, _, _ := e.Cluster().SpillStats(); s1 != s0 {
		t.Fatalf("SET memory_spill_ratio 0 still spilled (%d -> %d)", s0, s1)
	}
}
