package core

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/workload"
)

// expandSchema covers all three storage engines plus the two non-hash
// distribution policies, with an index to exercise the flip's index clone.
const expandSchema = failoverSchema + `
CREATE TABLE er (k int, v int, s text) DISTRIBUTED REPLICATED;
CREATE TABLE ed (k int, v int, s text) DISTRIBUTED RANDOMLY;
CREATE INDEX fh_k ON fh (k);
`

var expandTables = []string{"fh", "fr", "fc", "er", "ed"}

// execRetry is the client contract during online expansion: a map flip
// strands plans built against the old placement with a retryable error, so
// clients re-plan and re-run. ErrTxnLostWrites aborts a transaction whole,
// so re-running the statement is equally safe.
func execRetry(ctx context.Context, s *Session, q string) (*Result, error) {
	for attempt := 0; ; attempt++ {
		res, err := s.Exec(ctx, q)
		if err == nil || attempt >= 30 ||
			!(cluster.IsRetryableDispatch(err) || errors.Is(err, cluster.ErrTxnLostWrites)) {
			return res, err
		}
		time.Sleep(time.Millisecond)
	}
}

// TestReplicatedScanSingleCopy pins the planner rule that a top-level read
// of a replicated table scans exactly one segment's copy: every segment
// stores the full table, and the final gather collects from all segments, so
// an unrestricted scan would return one copy per segment.
func TestReplicatedScanSingleCopy(t *testing.T) {
	_, s := newTestEngine(t, 3)
	mustExec(t, s, "CREATE TABLE rep (k int, v int) DISTRIBUTED REPLICATED")
	mustExec(t, s, "INSERT INTO rep VALUES (1, 10), (2, 20), (3, 30)")
	for _, dop := range []int{1, 4} {
		mustExec(t, s, fmt.Sprintf("SET exec_parallelism = %d", dop))
		if got := mustExec(t, s, "SELECT k, v FROM rep ORDER BY k").Rows; len(got) != 3 {
			t.Fatalf("dop %d: plain scan returned %d rows, want 3 (per-segment copies leaked)", dop, len(got))
		}
		// Two-phase aggregates must not count per-segment copies either.
		res := mustExec(t, s, "SELECT count(*), sum(v) FROM rep")
		if n, sum := res.Rows[0][0].Int(), res.Rows[0][1].Int(); n != 3 || sum != 60 {
			t.Fatalf("dop %d: aggregate over replicated table = (%d, %d), want (3, 60)", dop, n, sum)
		}
	}
}

// TestExpandSQLSurface drives the SQL entry points: ALTER SYSTEM EXPAND TO
// grows the cluster and SHOW expand_status tracks the run to completion.
func TestExpandSQLSurface(t *testing.T) {
	e, s := newTestEngine(t, 2)
	ctx := context.Background()
	mustExec(t, s, "CREATE TABLE t (a int, b int) DISTRIBUTED BY (a)")
	for i := 0; i < 100; i++ {
		mustExec(t, s, fmt.Sprintf("INSERT INTO t VALUES (%d, %d)", i, i*2))
	}
	mustExec(t, s, "ALTER SYSTEM EXPAND TO 4")
	if err := e.Cluster().WaitExpand(ctx); err != nil {
		t.Fatalf("expansion failed: %v", err)
	}
	res := mustExec(t, s, "SHOW expand_status")
	status := map[string]string{}
	for _, r := range res.Rows {
		status[r[0].Text()] = r[1].Text()
	}
	if status["state"] != "complete" {
		t.Fatalf("expand_status = %v", status)
	}
	if status["segments_from"] != "2" || status["segments_target"] != "4" {
		t.Fatalf("expand_status bounds = %v", status)
	}
	if status["restarts"] != "0" {
		t.Fatalf("clean expansion reported restarts: %v", status)
	}
	got, err := execRetry(ctx, s, "SELECT count(*) FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if n := got.Rows[0][0].Int(); n != 100 {
		t.Fatalf("count after expand = %d, want 100", n)
	}
	// The widened placement serves index lookups and new writes.
	mustExec(t, s, "INSERT INTO t VALUES (1000, 1)")
	if n := mustExec(t, s, "SELECT count(*) FROM t").Rows[0][0].Int(); n != 101 {
		t.Fatalf("count after post-expand insert = %d, want 101", n)
	}
	if _, err := s.Exec(ctx, "ALTER SYSTEM EXPAND TO 3"); err == nil {
		t.Fatal("shrinking EXPAND must error")
	}
}

// TestExpandEquivalence is the online-expansion property test: for a seeded
// random DML workload over all three storage engines (plus replicated and
// random distributions), expanding the cluster 2→4 mid-schedule must leave
// every table byte-identical to a run that never expanded — at dop 1 and 4.
// The workload keeps running while shards move; clients only ever see
// retryable errors at the flip.
func TestExpandEquivalence(t *testing.T) {
	seeds := []uint64{3, 11, 29}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			runExpandEquivalence(t, seed)
		})
	}
}

func runExpandEquivalence(t *testing.T, seed uint64) {
	ctx := context.Background()
	const steps = 400

	// Control never expands; the expanding engine grows 2→4 mid-schedule.
	sessions := make([]*Session, 2)
	var expEng *Engine
	for i := range sessions {
		e, s := newReplicatedEngine(t, 2, cluster.ReplicaSync)
		if err := s.ExecScript(ctx, expandSchema); err != nil {
			t.Fatal(err)
		}
		sessions[i] = s
		if i == 1 {
			expEng = e
		}
	}
	control, expanding := sessions[0], sessions[1]

	r := workload.NewRand(seed)
	expandAt := r.Range(steps/4, steps/2)
	stmts := expandDML(seed, steps)

	for i, q := range stmts {
		if _, err := control.Exec(ctx, q); err != nil {
			t.Fatalf("control step %d (%q): %v", i, q, err)
		}
		if i == expandAt {
			if err := expEng.Cluster().StartExpand(4); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := execRetry(ctx, expanding, q); err != nil {
			t.Fatalf("expanding step %d (%q): %v", i, q, err)
		}
	}
	if err := expEng.Cluster().WaitExpand(ctx); err != nil {
		t.Fatalf("seed %d: expansion failed: %v", seed, err)
	}
	if got := expEng.Cluster().SegCount(); got != 4 {
		t.Fatalf("SegCount after expand = %d", got)
	}
	for _, tab := range expandTables {
		moved, err := expEng.Cluster().Catalog().Table(tab)
		if err != nil {
			t.Fatal(err)
		}
		if w, _ := moved.Placement(); w != 4 {
			t.Fatalf("table %s placement width = %d after expand", tab, w)
		}
	}

	for _, dop := range []int{1, 4} {
		for _, sess := range sessions {
			mustExec(t, sess, fmt.Sprintf("SET exec_parallelism = %d", dop))
		}
		for _, tab := range expandTables {
			q := fmt.Sprintf("SELECT k, v, s FROM %s ORDER BY k, v, s", tab)
			want := rowsText(mustExec(t, control, q))
			got := rowsText(mustExec(t, expanding, q))
			if want != got {
				t.Fatalf("seed %d dop %d: table %s diverged after expansion at step %d\ncontrol %d bytes, expanded %d bytes",
					seed, dop, tab, expandAt, len(want), len(got))
			}
		}
	}
	// Index lookups read the rebuilt index on the moved table.
	for _, k := range []int{0, 7, 63} {
		q := fmt.Sprintf("SELECT k, v, s FROM fh WHERE k = %d ORDER BY k, v, s", k)
		if want, got := rowsText(mustExec(t, control, q)), rowsText(mustExec(t, expanding, q)); want != got {
			t.Fatalf("seed %d: index lookup k=%d diverged after expansion", seed, k)
		}
	}
}

// expandDML generates a deterministic mixed DML stream over the expansion
// test tables (hash × three storage engines, replicated, random).
func expandDML(seed uint64, n int) []string {
	r := workload.NewRand(seed * 1231)
	out := make([]string, 0, n)
	next := 0
	for i := 0; i < n; i++ {
		tab := expandTables[r.Intn(len(expandTables))]
		switch r.Intn(10) {
		case 0, 1, 2, 3, 4: // insert a small batch
			var sb strings.Builder
			fmt.Fprintf(&sb, "INSERT INTO %s VALUES ", tab)
			for j := 0; j < 1+r.Intn(5); j++ {
				if j > 0 {
					sb.WriteByte(',')
				}
				fmt.Fprintf(&sb, "(%d, %d, 'e%d')", next, r.Intn(1000), next%17)
				next++
			}
			out = append(out, sb.String())
		case 5, 6: // arithmetic update over a key stripe
			out = append(out, fmt.Sprintf("UPDATE %s SET v = v + %d WHERE k %% 7 = %d", tab, 1+r.Intn(9), r.Intn(7)))
		case 7: // delete a sliver
			out = append(out, fmt.Sprintf("DELETE FROM %s WHERE k %% 29 = %d", tab, r.Intn(29)))
		case 8: // read (keeps snapshots and read-only commits in the mix)
			out = append(out, fmt.Sprintf("SELECT count(*) FROM %s", tab))
		default: // text update over a different stripe
			out = append(out, fmt.Sprintf("UPDATE %s SET s = 'x%d' WHERE k %% 11 = %d", tab, i, r.Intn(11)))
		}
	}
	return out
}
