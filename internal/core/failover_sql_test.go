package core

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/workload"
)

// newReplicatedEngine boots an engine with WAL + mirrors + a fast FTS.
func newReplicatedEngine(t *testing.T, nseg int, mode cluster.ReplicaMode) (*Engine, *Session) {
	t.Helper()
	cfg := cluster.GPDB6(nseg)
	cfg.GDDPeriod = 5 * time.Millisecond
	cfg.ReplicaMode = mode
	cfg.FTSInterval = 2 * time.Millisecond
	e := NewEngine(cfg)
	t.Cleanup(e.Close)
	s, err := e.NewSession("")
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	return e, s
}

func rowsText(res *Result) string {
	var sb strings.Builder
	for _, r := range res.Rows {
		for i, d := range r {
			if i > 0 {
				sb.WriteByte('|')
			}
			sb.WriteString(fmt.Sprintf("%s:%s", d.Kind(), d.String()))
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

const failoverSchema = `
CREATE TABLE fh (k int, v int, s text) DISTRIBUTED BY (k);
CREATE TABLE fr (k int, v int, s text) WITH (appendonly=true) DISTRIBUTED BY (k);
CREATE TABLE fc (k int, v int, s text) WITH (appendonly=true, orientation=column) DISTRIBUTED BY (k);
`

// TestFailoverServesCommittedData kills each segment in turn (recovering in
// between) and checks that committed rows in all three storage engines
// survive promotion byte-for-byte.
func TestFailoverServesCommittedData(t *testing.T) {
	for _, mode := range []cluster.ReplicaMode{cluster.ReplicaSync, cluster.ReplicaAsync} {
		t.Run(mode.String(), func(t *testing.T) {
			e, s := newReplicatedEngine(t, 3, mode)
			ctx := context.Background()
			if err := s.ExecScript(ctx, failoverSchema); err != nil {
				t.Fatal(err)
			}
			for _, tab := range []string{"fh", "fr", "fc"} {
				for i := 0; i < 500; i++ {
					mustExec(t, s, fmt.Sprintf("INSERT INTO %s VALUES (%d, %d, 'x%d')", tab, i, i*3, i))
				}
				mustExec(t, s, fmt.Sprintf("UPDATE %s SET v = v + 1 WHERE k < 100", tab))
				mustExec(t, s, fmt.Sprintf("DELETE FROM %s WHERE k >= 450", tab))
			}
			baseline := map[string]string{}
			for _, tab := range []string{"fh", "fr", "fc"} {
				baseline[tab] = rowsText(mustExec(t, s, fmt.Sprintf("SELECT k, v, s FROM %s ORDER BY k", tab)))
			}
			cl := e.Cluster()
			for seg := 0; seg < 3; seg++ {
				if err := cl.KillSegment(seg); err != nil {
					t.Fatal(err)
				}
				for _, tab := range []string{"fh", "fr", "fc"} {
					got := rowsText(mustExec(t, s, fmt.Sprintf("SELECT k, v, s FROM %s ORDER BY k", tab)))
					if got != baseline[tab] {
						t.Fatalf("mode %v: table %s differs after killing segment %d", mode, tab, seg)
					}
				}
				// Rebuild redundancy so the next kill has a mirror.
				if err := cl.Recover(seg); err != nil {
					t.Fatal(err)
				}
			}
			if cl.Failovers() != 3 {
				t.Fatalf("failovers = %d, want 3", cl.Failovers())
			}
			// The promoted primaries accept new writes.
			mustExec(t, s, "INSERT INTO fh VALUES (9001, 1, 'post')")
			res := mustExec(t, s, "SELECT count(*) FROM fh WHERE k = 9001")
			if res.Rows[0][0].Int() != 1 {
				t.Fatal("write after failover not visible")
			}
		})
	}
}

// TestFailoverAbortsTxnThatWroteDeadSegment: a transaction that wrote a
// segment whose primary subsequently died must abort (its uncommitted
// writes were rolled back by crash recovery on the mirror).
func TestFailoverAbortsTxnThatWroteDeadSegment(t *testing.T) {
	e, s := newReplicatedEngine(t, 2, cluster.ReplicaSync)
	ctx := context.Background()
	mustExec(t, s, "CREATE TABLE ft (k int, v int) DISTRIBUTED BY (k)")
	for i := 0; i < 40; i++ {
		mustExec(t, s, fmt.Sprintf("INSERT INTO ft VALUES (%d, 0)", i))
	}
	mustExec(t, s, "BEGIN")
	// Touch every segment so the txn certainly wrote the victim.
	mustExec(t, s, "UPDATE ft SET v = 99")
	if err := e.Cluster().KillSegment(0); err != nil {
		t.Fatal(err)
	}
	// COMMIT (or any later statement) must fail: the writes are gone.
	_, err := s.Exec(ctx, "COMMIT")
	if err == nil {
		t.Fatal("commit of a transaction with lost writes succeeded")
	}
	if !errors.Is(err, cluster.ErrTxnLostWrites) {
		t.Fatalf("want ErrTxnLostWrites, got %v", err)
	}
	// Wait for the automatic promotion, then verify the update rolled back.
	waitFailovers(t, e, 1)
	res := mustExec(t, s, "SELECT count(*) FROM ft WHERE v = 99")
	if res.Rows[0][0].Int() != 0 {
		t.Fatalf("aborted transaction's writes visible after failover: %v", res.Rows)
	}
	res = mustExec(t, s, "SELECT count(*) FROM ft")
	if res.Rows[0][0].Int() != 40 {
		t.Fatalf("committed rows lost: %v", res.Rows)
	}
}

// TestFailoverReadYourWritesGuard: after a transaction's written segment
// fails over, even a read in the same transaction must fail — returning
// rows without the transaction's own (rolled-back) writes would silently
// violate read-your-writes.
func TestFailoverReadYourWritesGuard(t *testing.T) {
	e, s := newReplicatedEngine(t, 2, cluster.ReplicaSync)
	ctx := context.Background()
	mustExec(t, s, "CREATE TABLE ry (k int, v int) DISTRIBUTED BY (k)")
	for i := 0; i < 20; i++ {
		mustExec(t, s, fmt.Sprintf("INSERT INTO ry VALUES (%d, 0)", i))
	}
	mustExec(t, s, "BEGIN")
	mustExec(t, s, "UPDATE ry SET v = 1")
	if err := e.Cluster().KillSegment(1); err != nil {
		t.Fatal(err)
	}
	waitFailovers(t, e, 1)
	_, err := s.Exec(ctx, "SELECT count(*) FROM ry WHERE v = 1")
	if err == nil {
		t.Fatal("read in a lost-writes transaction succeeded")
	}
	if !errors.Is(err, cluster.ErrTxnLostWrites) {
		t.Fatalf("want ErrTxnLostWrites, got %v", err)
	}
	mustExec(t, s, "ROLLBACK")
	res := mustExec(t, s, "SELECT count(*) FROM ry WHERE v = 1")
	if res.Rows[0][0].Int() != 0 {
		t.Fatalf("rolled-back writes visible: %v", res.Rows)
	}
}

func waitFailovers(t *testing.T, e *Engine, n int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for e.Cluster().Failovers() < n {
		if time.Now().After(deadline) {
			t.Fatalf("failovers stuck at %d, want %d", e.Cluster().Failovers(), n)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestKillWithoutMirrorFailsFastAndRevives: without replication the segment
// is simply down; Recover revives it from its own WAL (restart-after-crash)
// and in-flight transactions from before the crash are aborted.
func TestKillWithoutMirrorFailsFastAndRevives(t *testing.T) {
	cfg := cluster.GPDB6(2)
	cfg.FailoverTimeout = 200 * time.Millisecond
	e := NewEngine(cfg)
	t.Cleanup(e.Close)
	s, err := e.NewSession("")
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	mustExec(t, s, "CREATE TABLE rv (k int, v int) DISTRIBUTED BY (k)")
	for i := 0; i < 50; i++ {
		mustExec(t, s, fmt.Sprintf("INSERT INTO rv VALUES (%d, %d)", i, i))
	}
	if err := e.Cluster().KillSegment(1); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Exec(ctx, "SELECT count(*) FROM rv"); err == nil {
		t.Fatal("query against a dead mirrorless segment succeeded")
	}
	if err := e.Cluster().Recover(1); err != nil {
		t.Fatalf("revive: %v", err)
	}
	res := mustExec(t, s, "SELECT count(*), sum(v) FROM rv")
	if res.Rows[0][0].Int() != 50 || res.Rows[0][1].Int() != 49*50/2 {
		t.Fatalf("revived segment lost data: %v", res.Rows)
	}
}

// TestScanStatsSurviveFailover: the dead incarnation's block-scan counters
// are folded into cluster totals instead of silently dropping.
func TestScanStatsSurviveFailover(t *testing.T) {
	e, s := newReplicatedEngine(t, 2, cluster.ReplicaSync)
	mustExec(t, s, "CREATE TABLE zs (k int, v int) WITH (appendonly=true, orientation=column) DISTRIBUTED BY (k)")
	var ins strings.Builder
	for i := 0; i < 3000; i++ {
		if i > 0 {
			ins.WriteByte(',')
		}
		fmt.Fprintf(&ins, "(%d, %d)", i, i)
	}
	mustExec(t, s, "INSERT INTO zs VALUES "+ins.String())
	mustExec(t, s, "SELECT count(*) FROM zs WHERE v < 10")
	before, _ := e.Cluster().ScanBlockStats()
	if before == 0 {
		t.Fatal("no blocks counted before failover")
	}
	if err := e.Cluster().KillSegment(0); err != nil {
		t.Fatal(err)
	}
	waitFailovers(t, e, 1)
	after, _ := e.Cluster().ScanBlockStats()
	if after < before {
		t.Fatalf("scan counters dropped across failover: %d -> %d", before, after)
	}
}

// TestPromotedMirrorServesFreshBlocks is the block-cache regression test: a
// promoted mirror must never serve decoded blocks (or zone pages) cached
// under the dead incarnation — scans after TRUNCATE + reload on the
// promoted primary must reflect only the new data.
func TestPromotedMirrorServesFreshBlocks(t *testing.T) {
	e, s := newReplicatedEngine(t, 1, cluster.ReplicaSync)
	mustExec(t, s, "CREATE TABLE bc (k int, v int) WITH (appendonly=true, orientation=column) DISTRIBUTED BY (k)")
	var ins strings.Builder
	for i := 0; i < 9000; i++ { // several sealed blocks
		if i > 0 {
			ins.WriteByte(',')
		}
		fmt.Fprintf(&ins, "(%d, 1)", i)
	}
	mustExec(t, s, "INSERT INTO bc VALUES "+ins.String())
	// Warm the primary's decode cache.
	res := mustExec(t, s, "SELECT sum(v) FROM bc")
	if res.Rows[0][0].Int() != 9000 {
		t.Fatalf("warmup sum: %v", res.Rows)
	}
	if err := e.Cluster().KillSegment(0); err != nil {
		t.Fatal(err)
	}
	waitFailovers(t, e, 1)
	// The promoted mirror serves the same data (decoded fresh, not from
	// the dead incarnation's cache)...
	res = mustExec(t, s, "SELECT sum(v) FROM bc")
	if res.Rows[0][0].Int() != 9000 {
		t.Fatalf("post-promotion sum: %v", res.Rows)
	}
	// ...and after truncate + reload nothing stale can reappear.
	mustExec(t, s, "TRUNCATE bc")
	mustExec(t, s, "INSERT INTO bc VALUES (1, 7), (2, 7)")
	res = mustExec(t, s, "SELECT sum(v), count(*) FROM bc")
	if res.Rows[0][0].Int() != 14 || res.Rows[0][1].Int() != 2 {
		t.Fatalf("stale blocks after truncate+reload on promoted mirror: %v", res.Rows)
	}
}

// TestShowWalStatsAndReplicaMode covers the SQL surface: SHOW wal_stats,
// SHOW replica_mode, SET replica_mode validation and live switching.
func TestShowWalStatsAndReplicaMode(t *testing.T) {
	_, s := newReplicatedEngine(t, 2, cluster.ReplicaSync)
	ctx := context.Background()
	mustExec(t, s, "CREATE TABLE ws (k int) DISTRIBUTED BY (k)")
	mustExec(t, s, "INSERT INTO ws VALUES (1), (2), (3)")
	res := mustExec(t, s, "SHOW wal_stats")
	vals := map[string]int64{}
	for _, r := range res.Rows {
		vals[r[0].Text()] = r[1].Int()
	}
	if vals["wal_records"] == 0 || vals["wal_bytes"] == 0 || vals["wal_flushes"] == 0 {
		t.Fatalf("wal_stats empty after DML: %v", vals)
	}
	res = mustExec(t, s, "SHOW replica_mode")
	if got := res.Rows[0][0].Text(); got != "sync" {
		t.Fatalf("replica_mode = %q", got)
	}
	mustExec(t, s, "SET replica_mode = async")
	res = mustExec(t, s, "SHOW replica_mode")
	if got := res.Rows[0][0].Text(); got != "async" {
		t.Fatalf("replica_mode after SET = %q", got)
	}
	if _, err := s.Exec(ctx, "SET replica_mode = sideways"); err == nil {
		t.Fatal("bad replica_mode accepted")
	}
	// Enabling replication on a cluster booted without it is refused.
	cfg := cluster.GPDB6(1)
	e2 := NewEngine(cfg)
	t.Cleanup(e2.Close)
	s2, err := e2.NewSession("")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Exec(ctx, "SET replica_mode = sync"); err == nil {
		t.Fatal("SET replica_mode on an unreplicated cluster accepted")
	}
}

// TestCrashRecoveryEquivalence is the property test: for a seeded random
// DML workload over all three storage engines, killing a random primary at
// a random point and promoting its mirror yields full-table scans
// byte-identical to a run that never failed — at dop 1 and dop 4.
func TestCrashRecoveryEquivalence(t *testing.T) {
	seeds := []uint64{1, 7, 23}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			runCrashEquivalence(t, seed)
		})
	}
}

func runCrashEquivalence(t *testing.T, seed uint64) {
	ctx := context.Background()
	const nseg = 3
	const steps = 400

	// Two identical engines: control never fails; chaos loses a random
	// primary mid-workload and promotes its mirror.
	engines := make([]*Session, 2)
	var chaosEng *Engine
	for i := range engines {
		e, s := newReplicatedEngine(t, nseg, cluster.ReplicaSync)
		if err := s.ExecScript(ctx, failoverSchema); err != nil {
			t.Fatal(err)
		}
		engines[i] = s
		if i == 1 {
			chaosEng = e
		}
	}
	control, chaos := engines[0], engines[1]

	r := workload.NewRand(seed)
	killAt := r.Range(steps/4, 3*steps/4)
	killSeg := r.Range(0, nseg-1)
	stmts := randomDML(seed, steps)

	for i, q := range stmts {
		if _, err := control.Exec(ctx, q); err != nil {
			t.Fatalf("control step %d (%q): %v", i, q, err)
		}
		if i == killAt {
			if err := chaosEng.Cluster().KillSegment(killSeg); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := chaos.Exec(ctx, q); err != nil {
			t.Fatalf("chaos step %d (%q): %v", i, q, err)
		}
	}
	if chaosEng.Cluster().Failovers() != 1 {
		t.Fatalf("failovers = %d", chaosEng.Cluster().Failovers())
	}

	for _, dop := range []int{1, 4} {
		for _, sess := range []*Session{control, chaos} {
			mustExec(t, sess, fmt.Sprintf("SET exec_parallelism = %d", dop))
		}
		for _, tab := range []string{"fh", "fr", "fc"} {
			q := fmt.Sprintf("SELECT k, v, s FROM %s ORDER BY k, v, s", tab)
			want := rowsText(mustExec(t, control, q))
			got := rowsText(mustExec(t, chaos, q))
			if want != got {
				t.Fatalf("seed %d dop %d: table %s diverged after kill(seg %d at step %d)\ncontrol %d bytes, chaos %d bytes",
					seed, dop, tab, killSeg, killAt, len(want), len(got))
			}
		}
	}
}

// randomDML generates a deterministic mixed DML stream over the three
// failover test tables.
func randomDML(seed uint64, n int) []string {
	r := workload.NewRand(seed * 977)
	tabs := []string{"fh", "fr", "fc"}
	out := make([]string, 0, n)
	next := 0
	for i := 0; i < n; i++ {
		tab := tabs[r.Intn(len(tabs))]
		switch r.Intn(10) {
		case 0, 1, 2, 3, 4: // insert a small batch
			var sb strings.Builder
			fmt.Fprintf(&sb, "INSERT INTO %s VALUES ", tab)
			for j := 0; j < 1+r.Intn(5); j++ {
				if j > 0 {
					sb.WriteByte(',')
				}
				fmt.Fprintf(&sb, "(%d, %d, 't%d')", next, r.Intn(1000), next%13)
				next++
			}
			out = append(out, sb.String())
		case 5, 6: // point-ish update
			out = append(out, fmt.Sprintf("UPDATE %s SET v = v + %d WHERE k %% 7 = %d", tab, 1+r.Intn(9), r.Intn(7)))
		case 7: // delete a sliver
			out = append(out, fmt.Sprintf("DELETE FROM %s WHERE k %% 31 = %d", tab, r.Intn(31)))
		case 8: // read (keeps snapshots and read-only commits in the mix)
			out = append(out, fmt.Sprintf("SELECT count(*) FROM %s", tab))
		default: // small explicit txn handled as one script
			out = append(out, fmt.Sprintf("UPDATE %s SET s = 'u%d' WHERE k %% 11 = %d", tab, i, r.Intn(11)))
		}
	}
	return out
}
