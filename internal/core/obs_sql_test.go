package core

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"
)

// planText flattens a one-column result (EXPLAIN, SHOW) into its lines.
func planText(res *Result) []string {
	out := make([]string, 0, len(res.Rows))
	for _, r := range res.Rows {
		out = append(out, r[0].Text())
	}
	return out
}

func containsLine(lines []string, substr string) bool {
	for _, l := range lines {
		if strings.Contains(l, substr) {
			return true
		}
	}
	return false
}

// TestExplainAnalyzeJoinOperators is the acceptance scenario: EXPLAIN ANALYZE
// on a three-way join over a multi-segment cluster must show per-operator
// actual statistics with per-segment detail and a skew ratio, and the
// retained gp_stat_queries record must agree with the printed totals.
func TestExplainAnalyzeJoinOperators(t *testing.T) {
	e, s := newTestEngine(t, 3)
	mustExec(t, s, "CREATE TABLE a (id int, v int) DISTRIBUTED BY (id)")
	mustExec(t, s, "CREATE TABLE b (id int, v int) DISTRIBUTED BY (id)")
	mustExec(t, s, "CREATE TABLE c (id int, v int) DISTRIBUTED BY (id)")
	for i := 0; i < 40; i++ {
		mustExec(t, s, fmt.Sprintf("INSERT INTO a VALUES (%d, %d)", i, i))
		mustExec(t, s, fmt.Sprintf("INSERT INTO b VALUES (%d, %d)", i, i*2))
		mustExec(t, s, fmt.Sprintf("INSERT INTO c VALUES (%d, %d)", i, i*3))
	}
	res := mustExec(t, s,
		"EXPLAIN ANALYZE SELECT a.id, b.v, c.v FROM a JOIN b ON a.id = b.id JOIN c ON a.id = c.id")
	lines := planText(res)
	if !containsLine(lines, "actual rows=") {
		t.Fatalf("no actual stats in plan:\n%s", strings.Join(lines, "\n"))
	}
	// Per-segment operator detail: at least two distinct segments reported.
	segSeen := map[string]bool{}
	for _, l := range lines {
		trimmed := strings.TrimSpace(l)
		for seg := 0; seg < 3; seg++ {
			if strings.HasPrefix(trimmed, fmt.Sprintf("seg%d: rows=", seg)) {
				segSeen[fmt.Sprintf("seg%d", seg)] = true
			}
		}
	}
	if len(segSeen) < 2 {
		t.Fatalf("per-segment detail covers %d segments, want >= 2:\n%s", len(segSeen), strings.Join(lines, "\n"))
	}
	if !containsLine(lines, "skew=") {
		t.Fatalf("no skew ratio in plan:\n%s", strings.Join(lines, "\n"))
	}
	var rows int64
	if _, err := fmt.Sscanf(lastMatching(lines, "rows: "), "rows: %d", &rows); err != nil {
		t.Fatalf("no rows footer: %v\n%s", err, strings.Join(lines, "\n"))
	}
	if rows != 40 {
		t.Fatalf("rows footer = %d, want 40", rows)
	}

	// The finished query must be retained in gp_stat_queries with totals
	// matching what EXPLAIN ANALYZE printed.
	hist := e.Activity().History(0)
	var found bool
	for _, r := range hist {
		if strings.Contains(r.SQL, "EXPLAIN ANALYZE SELECT a.id") {
			found = true
			if r.Rows != rows {
				t.Fatalf("gp_stat_queries rows = %d, EXPLAIN ANALYZE printed %d", r.Rows, rows)
			}
			if r.Err != "" {
				t.Fatalf("retained record has error %q", r.Err)
			}
		}
	}
	if !found {
		t.Fatalf("EXPLAIN ANALYZE statement not retained in history (%d records)", len(hist))
	}
}

func lastMatching(lines []string, prefix string) string {
	out := ""
	for _, l := range lines {
		if strings.HasPrefix(strings.TrimSpace(l), prefix) {
			out = strings.TrimSpace(l)
		}
	}
	return out
}

// TestExplainAnalyzeDML checks the write-side EXPLAIN ANALYZE: the statement
// executes for real, reports a per-segment rows-affected breakdown, and the
// timing footer is non-negative (monotonic clock).
func TestExplainAnalyzeDML(t *testing.T) {
	_, s := newTestEngine(t, 3)
	mustExec(t, s, "CREATE TABLE w (id int, v int) DISTRIBUTED BY (id)")

	res := mustExec(t, s, "EXPLAIN ANALYZE INSERT INTO w VALUES (1, 10), (2, 20), (3, 30), (4, 40)")
	lines := planText(res)
	if !containsLine(lines, "rows affected: 4") {
		t.Fatalf("insert: want 'rows affected: 4' in:\n%s", strings.Join(lines, "\n"))
	}
	segRows := 0
	for _, l := range lines {
		var seg, n int
		if _, err := fmt.Sscanf(strings.TrimSpace(l), "seg%d: rows=%d", &seg, &n); err == nil {
			segRows += n
		}
	}
	if segRows != 4 {
		t.Fatalf("insert: per-segment rows sum to %d, want 4:\n%s", segRows, strings.Join(lines, "\n"))
	}
	// The write really happened.
	if got := mustExec(t, s, "SELECT count(*) FROM w").Rows[0][0].Int(); got != 4 {
		t.Fatalf("after EXPLAIN ANALYZE INSERT: count = %d, want 4", got)
	}

	res = mustExec(t, s, "EXPLAIN ANALYZE UPDATE w SET v = v + 1 WHERE id <= 2")
	lines = planText(res)
	if !containsLine(lines, "rows affected: 2") {
		t.Fatalf("update: want 'rows affected: 2' in:\n%s", strings.Join(lines, "\n"))
	}

	res = mustExec(t, s, "EXPLAIN ANALYZE DELETE FROM w WHERE id = 3")
	lines = planText(res)
	if !containsLine(lines, "rows affected: 1") {
		t.Fatalf("delete: want 'rows affected: 1' in:\n%s", strings.Join(lines, "\n"))
	}
	for _, l := range lines {
		if strings.HasPrefix(strings.TrimSpace(l), "execution time: ") {
			var ms float64
			if _, err := fmt.Sscanf(strings.TrimSpace(l), "execution time: %f ms", &ms); err != nil || ms < 0 {
				t.Fatalf("bad timing footer %q (ms=%v err=%v)", l, ms, err)
			}
		}
	}
}

// TestGpStatActivityAndQueries exercises the live session view and the
// finished-query ring through plain SQL.
func TestGpStatActivityAndQueries(t *testing.T) {
	_, s := newTestEngine(t, 2)
	mustExec(t, s, "CREATE TABLE t (a int) DISTRIBUTED BY (a)")
	mustExec(t, s, "INSERT INTO t VALUES (1), (2), (3)")
	mustExec(t, s, "SELECT * FROM t")

	res := mustExec(t, s, "SHOW gp_stat_activity")
	if len(res.Rows) < 1 {
		t.Fatal("gp_stat_activity is empty")
	}
	// Our own session is active (running the SHOW) with a statement count.
	var active bool
	for _, r := range res.Rows {
		if r[2].Text() == "active" && strings.Contains(r[3].Text(), "gp_stat_activity") {
			active = true
			if r[5].Int() < 3 {
				t.Fatalf("statements = %d, want >= 3", r[5].Int())
			}
		}
	}
	if !active {
		t.Fatalf("own session not shown active: %v", res.Rows)
	}

	res = mustExec(t, s, "SHOW gp_stat_queries")
	if !rowsContain(res, "SELECT * FROM t") {
		t.Fatalf("gp_stat_queries misses the SELECT: %v", res.Rows)
	}
	for _, r := range res.Rows {
		if strings.Contains(r[2].Text(), "SELECT * FROM t") && r[3].Int() != 3 {
			t.Fatalf("retained SELECT rows = %d, want 3", r[3].Int())
		}
	}
}

func rowsContain(res *Result, substr string) bool {
	for _, r := range res.Rows {
		for _, d := range r {
			if strings.Contains(d.Text(), substr) {
				return true
			}
		}
	}
	return false
}

// TestGpStatMetrics checks the registry view carries the query counters and
// the histogram expansion.
func TestGpStatMetrics(t *testing.T) {
	_, s := newTestEngine(t, 2)
	mustExec(t, s, "CREATE TABLE t (a int) DISTRIBUTED BY (a)")
	mustExec(t, s, "INSERT INTO t VALUES (1)")

	res := mustExec(t, s, "SHOW gp_stat_metrics")
	vals := map[string]int64{}
	for _, r := range res.Rows {
		vals[r[0].Text()] = r[1].Int()
	}
	if vals["query.statements"] < 2 {
		t.Fatalf("query.statements = %d, want >= 2 (all: %d series)", vals["query.statements"], len(vals))
	}
	if _, ok := vals["query.seconds.count"]; !ok {
		t.Fatal("histogram query.seconds not expanded to .count/.sum_ms")
	}
	if vals["cluster.segments"] != 2 {
		t.Fatalf("cluster.segments = %d, want 2", vals["cluster.segments"])
	}
}

// TestTraceQueries turns tracing on, runs a distributed query, and checks the
// span tree is retained, complete (parse/plan/execute plus per-segment
// slices), and leak-free.
func TestTraceQueries(t *testing.T) {
	e, s := newTestEngine(t, 3)
	mustExec(t, s, "CREATE TABLE t (a int, b int) DISTRIBUTED BY (a)")
	for i := 0; i < 12; i++ {
		mustExec(t, s, fmt.Sprintf("INSERT INTO t VALUES (%d, %d)", i, i))
	}
	mustExec(t, s, "SET trace_queries on")
	mustExec(t, s, "SELECT a, b FROM t ORDER BY a")
	mustExec(t, s, "SET trace_queries off")

	traces := e.Activity().Traces().Recent(0)
	if len(traces) == 0 {
		t.Fatal("no traces retained")
	}
	var sel []string
	for _, tr := range traces {
		if strings.Contains(tr.SQL, "ORDER BY a") {
			sel = tr.Render()
			if n := tr.OpenSpans(); n != 0 {
				t.Fatalf("trace leaked %d open spans:\n%s", n, strings.Join(sel, "\n"))
			}
		}
	}
	if sel == nil {
		t.Fatalf("SELECT trace not retained (%d traces)", len(traces))
	}
	for _, want := range []string{"query", "plan", "execute"} {
		if !containsLine(sel, want) {
			t.Fatalf("span %q missing from trace:\n%s", want, strings.Join(sel, "\n"))
		}
	}
	if !containsLine(sel, "seg") {
		t.Fatalf("no per-segment span in trace:\n%s", strings.Join(sel, "\n"))
	}

	// The same tree must be visible through SQL.
	res := mustExec(t, s, "SHOW gp_stat_traces")
	if !rowsContain(res, "execute") {
		t.Fatalf("gp_stat_traces misses execute span: %v", res.Rows)
	}
}

// TestSlowQueryLog checks SET log_min_duration 0 flags every statement slow
// and -1 disables the log again.
func TestSlowQueryLog(t *testing.T) {
	e, s := newTestEngine(t, 2)
	mustExec(t, s, "CREATE TABLE t (a int) DISTRIBUTED BY (a)")
	mustExec(t, s, "SET log_min_duration 0")
	mustExec(t, s, "INSERT INTO t VALUES (1)")
	mustExec(t, s, "SET log_min_duration -1")
	mustExec(t, s, "INSERT INTO t VALUES (2)")

	slow := e.Activity().SlowQueries(0)
	var logged, loggedAfterOff bool
	for _, r := range slow {
		if strings.Contains(r.SQL, "VALUES (1)") {
			logged = true
		}
		if strings.Contains(r.SQL, "VALUES (2)") {
			loggedAfterOff = true
		}
	}
	if !logged {
		t.Fatalf("statement under log_min_duration 0 not in slow log (%d entries)", len(slow))
	}
	if loggedAfterOff {
		t.Fatal("statement logged slow after log_min_duration -1")
	}
	res := mustExec(t, s, "SHOW gp_slow_queries")
	if !rowsContain(res, "VALUES (1)") {
		t.Fatalf("SHOW gp_slow_queries misses the entry: %v", res.Rows)
	}
}

// TestObsSettingValidation covers the SET knobs' error paths and SHOW
// defaults.
func TestObsSettingValidation(t *testing.T) {
	_, s := newTestEngine(t, 2)
	ctx := context.Background()
	if _, err := s.Exec(ctx, "SET trace_queries maybe"); err == nil {
		t.Fatal("SET trace_queries maybe: want error")
	}
	if _, err := s.Exec(ctx, "SET log_min_duration never"); err == nil {
		t.Fatal("SET log_min_duration never: want error")
	}
	if _, err := s.Exec(ctx, "SET log_min_duration -5"); err == nil {
		t.Fatal("SET log_min_duration -5: want error")
	}
	if v := mustExec(t, s, "SHOW trace_queries").Rows[0][0].Text(); v != "off" {
		t.Fatalf("default trace_queries = %q, want off", v)
	}
	if v := mustExec(t, s, "SHOW log_min_duration").Rows[0][0].Text(); v != "-1" {
		t.Fatalf("default log_min_duration = %q, want -1", v)
	}
}

// TestActivityDisabled reconstructs the pre-observability baseline: with the
// tracker disabled nothing is recorded and queries still run.
func TestActivityDisabled(t *testing.T) {
	e, s := newTestEngine(t, 2)
	e.Activity().SetEnabled(false)
	defer e.Activity().SetEnabled(true)
	mustExec(t, s, "CREATE TABLE t (a int) DISTRIBUTED BY (a)")
	mustExec(t, s, "INSERT INTO t VALUES (1)")
	if res := mustExec(t, s, "SELECT * FROM t"); len(res.Rows) != 1 {
		t.Fatalf("select with activity off: %v", res.Rows)
	}
	if n := len(e.Activity().History(0)); n != 0 {
		t.Fatalf("history has %d records with activity disabled", n)
	}
}

// TestQuerySecondsHistogram checks statement latencies land in the engine's
// query.seconds histogram.
func TestQuerySecondsHistogram(t *testing.T) {
	e, s := newTestEngine(t, 2)
	mustExec(t, s, "CREATE TABLE t (a int) DISTRIBUTED BY (a)")
	for i := 0; i < 5; i++ {
		mustExec(t, s, fmt.Sprintf("INSERT INTO t VALUES (%d)", i))
	}
	snap := e.Metrics().Snapshot()
	h, ok := snap.Hists["query.seconds"]
	if !ok {
		t.Fatal("query.seconds histogram missing from snapshot")
	}
	if h.Count < 6 {
		t.Fatalf("query.seconds count = %d, want >= 6", h.Count)
	}
	if h.Sum <= 0 {
		t.Fatalf("query.seconds sum = %v, want > 0", h.Sum)
	}
	_ = time.Now()
}
