package core

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/types"
)

// loadAnalyticsTable creates an AO-column table and bulk-loads nRows rows.
func loadAnalyticsTable(t *testing.T, s *Session, nRows int) {
	t.Helper()
	ctx := context.Background()
	if _, err := s.Exec(ctx, "CREATE TABLE f (a int, g int, w int) WITH (appendonly=true, orientation=column) DISTRIBUTED BY (a)"); err != nil {
		t.Fatal(err)
	}
	for off := 0; off < nRows; off += 1000 {
		var sb strings.Builder
		sb.WriteString("INSERT INTO f VALUES ")
		for i := off; i < off+1000 && i < nRows; i++ {
			if i > off {
				sb.WriteByte(',')
			}
			fmt.Fprintf(&sb, "(%d,%d,%d)", i, i%37, i%7)
		}
		if _, err := s.Exec(ctx, sb.String()); err != nil {
			t.Fatal(err)
		}
	}
}

// TestParallelSQLMatchesSerial runs the same analytical query on a serial and
// a parallel cluster and requires byte-identical results — the acceptance
// property of intra-segment parallelism.
func TestParallelSQLMatchesSerial(t *testing.T) {
	const nRows = 12000
	query := "SELECT g, count(*), sum(a), min(a), max(a) FROM f WHERE w < 5 GROUP BY g"
	results := map[int][]types.Row{}
	for _, dop := range []int{1, 4} {
		cfg := cluster.GPDB6(2)
		cfg.ExecParallelism = dop
		e := NewEngine(cfg)
		s, _ := e.NewSession("")
		loadAnalyticsTable(t, s, nRows)
		res, err := s.Exec(context.Background(), query)
		if err != nil {
			e.Close()
			t.Fatal(err)
		}
		results[dop] = res.Rows
		e.Close()
	}
	if len(results[1]) != 37 {
		t.Fatalf("groups: %d", len(results[1]))
	}
	if len(results[1]) != len(results[4]) {
		t.Fatalf("row counts differ: serial=%d parallel=%d", len(results[1]), len(results[4]))
	}
	for i := range results[1] {
		if !results[1][i].Equal(results[4][i]) {
			t.Fatalf("row %d differs: serial=%v parallel=%v", i, results[1][i], results[4][i])
		}
	}
}

// TestParallelExplainAnnotation: the planner annotates parallel-safe slices
// and EXPLAIN surfaces the degree; SET exec_parallelism overrides per session.
func TestParallelExplainAnnotation(t *testing.T) {
	cfg := cluster.GPDB6(2)
	cfg.ExecParallelism = 4
	e := NewEngine(cfg)
	defer e.Close()
	s, _ := e.NewSession("")
	ctx := context.Background()
	if _, err := s.Exec(ctx, "CREATE TABLE f (a int, g int) DISTRIBUTED BY (a)"); err != nil {
		t.Fatal(err)
	}
	explain := func() string {
		res, err := s.Exec(ctx, "EXPLAIN SELECT g, count(*) FROM f GROUP BY g")
		if err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		for _, r := range res.Rows {
			sb.WriteString(r[0].Text())
			sb.WriteByte('\n')
		}
		return sb.String()
	}
	if out := explain(); !strings.Contains(out, "parallel 4") {
		t.Fatalf("EXPLAIN lacks parallel annotation:\n%s", out)
	}
	if _, err := s.Exec(ctx, "SET exec_parallelism = 1"); err != nil {
		t.Fatal(err)
	}
	if out := explain(); strings.Contains(out, "parallel") {
		t.Fatalf("SET exec_parallelism=1 did not disable annotation:\n%s", out)
	}
	// A FOR UPDATE scan must never be annotated.
	res, err := s.Exec(ctx, "SET exec_parallelism = 8")
	_ = res
	if err != nil {
		t.Fatal(err)
	}
	out, err := s.Exec(ctx, "EXPLAIN SELECT * FROM f FOR UPDATE")
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range out.Rows {
		if strings.Contains(r[0].Text(), "parallel") {
			t.Fatalf("FOR UPDATE slice annotated parallel: %v", r)
		}
	}
}

// TestSegmentBlockCacheWarmsAcrossQueries: the second identical scan should
// be served from the segments' decoded-block caches.
func TestSegmentBlockCacheWarmsAcrossQueries(t *testing.T) {
	cfg := cluster.GPDB6(2)
	e := NewEngine(cfg)
	defer e.Close()
	s, _ := e.NewSession("")
	loadAnalyticsTable(t, s, 12000)
	ctx := context.Background()
	q := "SELECT g, sum(a) FROM f GROUP BY g"
	if _, err := s.Exec(ctx, q); err != nil {
		t.Fatal(err)
	}
	var coldHits, coldMisses int64
	for _, seg := range e.Cluster().Segments() {
		st := seg.BlockCacheStats()
		coldHits += st.Hits
		coldMisses += st.Misses
	}
	if coldMisses == 0 {
		t.Fatal("first scan produced no cache misses — cache not wired?")
	}
	if _, err := s.Exec(ctx, q); err != nil {
		t.Fatal(err)
	}
	var warmHits int64
	for _, seg := range e.Cluster().Segments() {
		warmHits += seg.BlockCacheStats().Hits
	}
	if warmHits <= coldHits {
		t.Fatalf("second scan did not hit the block cache: cold=%d warm=%d", coldHits, warmHits)
	}
	// DROP TABLE must release the table's cached blocks.
	if _, err := s.Exec(ctx, "DROP TABLE f"); err != nil {
		t.Fatal(err)
	}
	for i, seg := range e.Cluster().Segments() {
		if st := seg.BlockCacheStats(); st.Entries != 0 || st.UsedBytes != 0 {
			t.Fatalf("segment %d cache retains dropped table's blocks: %+v", i, st)
		}
	}
}
