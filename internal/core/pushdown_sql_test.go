package core

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/types"
)

// loadClusteredTable creates an AO-column table whose key column k is
// clustered (inserted in ascending order), so selective key predicates can
// skip most sealed blocks, plus an unclustered noise column.
func loadClusteredTable(t *testing.T, s *Session, name string, nRows int) {
	t.Helper()
	ctx := context.Background()
	mustExec(t, s, "CREATE TABLE "+name+" (k int, v int, w text) WITH (appendonly=true, orientation=column) DISTRIBUTED BY (k)")
	for off := 0; off < nRows; off += 1000 {
		var sb strings.Builder
		sb.WriteString("INSERT INTO " + name + " VALUES ")
		for i := off; i < off+1000 && i < nRows; i++ {
			if i > off {
				sb.WriteByte(',')
			}
			fmt.Fprintf(&sb, "(%d,%d,'w%d')", i, i%97, i%5)
		}
		if _, err := s.Exec(ctx, sb.String()); err != nil {
			t.Fatal(err)
		}
	}
}

// TestPushdownOnOffResultEquality: the same queries return byte-identical
// results with zone maps on and off, serially and at exec_parallelism=4 —
// the acceptance property of predicate pushdown.
func TestPushdownOnOffResultEquality(t *testing.T) {
	const nRows = 20000
	queries := []string{
		"SELECT count(*), sum(v) FROM p WHERE k >= 5000 AND k < 5200",
		"SELECT k, v FROM p WHERE k BETWEEN 9990 AND 10010 ORDER BY k",
		"SELECT count(*) FROM p WHERE k IN (1, 4097, 12000, 99999)",
		"SELECT count(*) FROM p WHERE k < 0",
		"SELECT count(*) FROM p WHERE v = 11",   // unclustered: skips nothing
		"SELECT count(*) FROM p WHERE k <> 123", // almost everything survives
		"SELECT v, count(*) FROM p WHERE k > 18000 GROUP BY v ORDER BY v",
	}
	type key struct {
		zonemaps bool
		dop      int
	}
	results := map[key]map[string][]types.Row{}
	for _, zm := range []bool{true, false} {
		for _, dop := range []int{1, 4} {
			cfg := cluster.GPDB6(2)
			cfg.EnableZoneMaps = zm
			cfg.ExecParallelism = dop
			e := NewEngine(cfg)
			s, _ := e.NewSession("")
			loadClusteredTable(t, s, "p", nRows)
			byQuery := map[string][]types.Row{}
			for _, q := range queries {
				res, err := s.Exec(context.Background(), q)
				if err != nil {
					e.Close()
					t.Fatalf("%s (zm=%v dop=%d): %v", q, zm, dop, err)
				}
				byQuery[q] = res.Rows
			}
			results[key{zm, dop}] = byQuery
			e.Close()
		}
	}
	base := results[key{true, 1}]
	for k, byQuery := range results {
		for _, q := range queries {
			want, got := base[q], byQuery[q]
			if len(want) != len(got) {
				t.Fatalf("%s (zm=%v dop=%d): %d rows vs %d", q, k.zonemaps, k.dop, len(got), len(want))
			}
			for i := range want {
				if !want[i].Equal(got[i]) {
					t.Fatalf("%s (zm=%v dop=%d) row %d: %v vs %v", q, k.zonemaps, k.dop, i, got[i], want[i])
				}
			}
		}
	}
}

// TestPushdownSkipsBlocksAndShowsStats: a selective clustered-key query
// skips most sealed blocks, the counters surface through SHOW scan_stats and
// EXPLAIN ANALYZE, and SET enable_zonemaps = off turns skipping off.
func TestPushdownSkipsBlocksAndShowsStats(t *testing.T) {
	e, s := newTestEngine(t, 1)
	loadClusteredTable(t, s, "p", 20000)
	_ = e

	showStat := func(name string) int64 {
		t.Helper()
		res := mustExec(t, s, "SHOW scan_stats")
		for _, r := range res.Rows {
			if r[0].Text() == name {
				return r[1].Int()
			}
		}
		t.Fatalf("stat %q missing", name)
		return 0
	}

	before := showStat("blocks_skipped")
	mustExec(t, s, "SELECT count(*) FROM p WHERE k >= 5000 AND k < 5100")
	if got := showStat("blocks_skipped"); got <= before {
		t.Fatalf("selective scan skipped no blocks: %d -> %d", before, got)
	}

	// EXPLAIN shows the pushed predicate.
	txt := explainText(t, s, "SELECT count(*) FROM p WHERE k >= 5000 AND k < 5100")
	if !strings.Contains(txt, "Pushdown: k >= 5000 AND k < 5100") {
		t.Fatalf("EXPLAIN lacks pushdown annotation:\n%s", txt)
	}

	// EXPLAIN ANALYZE executes and reports block counters.
	res := mustExec(t, s, "EXPLAIN ANALYZE SELECT count(*) FROM p WHERE k >= 5000 AND k < 5100")
	var blocksLine string
	for _, r := range res.Rows {
		if strings.HasPrefix(r[0].Text(), "blocks:") {
			blocksLine = r[0].Text()
		}
	}
	if blocksLine == "" || strings.Contains(blocksLine, "skipped=0") {
		t.Fatalf("EXPLAIN ANALYZE blocks line: %q (rows: %v)", blocksLine, res.Rows)
	}

	// Session off-switch: no pushdown annotation, no new skips.
	mustExec(t, s, "SET enable_zonemaps = off")
	txt = explainText(t, s, "SELECT count(*) FROM p WHERE k >= 5000 AND k < 5100")
	if strings.Contains(txt, "Pushdown:") {
		t.Fatalf("enable_zonemaps=off still pushes:\n%s", txt)
	}
	skippedOff := showStat("blocks_skipped")
	mustExec(t, s, "SELECT count(*) FROM p WHERE k >= 5000 AND k < 5100")
	if got := showStat("blocks_skipped"); got != skippedOff {
		t.Fatalf("pushdown off still skipped blocks: %d -> %d", skippedOff, got)
	}
	if res := mustExec(t, s, "SHOW enable_zonemaps"); res.Rows[0][0].Text() != "off" {
		t.Fatalf("SHOW enable_zonemaps: %v", res.Rows)
	}
	mustExec(t, s, "SET enable_zonemaps = on")

	// Heap tables skip via lazy page zones too.
	mustExec(t, s, "CREATE TABLE hp (k int, v int) DISTRIBUTED BY (k)")
	bulkInsert(t, s, "hp", 4096, 0, func(i int) string { return fmt.Sprintf("(%d,%d)", i, i%7) })
	before = showStat("blocks_skipped")
	mustExec(t, s, "SELECT count(*) FROM hp WHERE k < 100")
	if got := showStat("blocks_skipped"); got <= before {
		t.Fatalf("heap page zones skipped nothing: %d -> %d", before, got)
	}
}

// TestSessionEnableOverDisabledConfig: SET enable_zonemaps = on works even
// when the cluster config default is off — the session knob overrides in
// both directions, with the plan-time gate as the single source of truth.
func TestSessionEnableOverDisabledConfig(t *testing.T) {
	cfg := cluster.GPDB6(1)
	cfg.EnableZoneMaps = false
	e := NewEngine(cfg)
	defer e.Close()
	s, err := e.NewSession("")
	if err != nil {
		t.Fatal(err)
	}
	loadClusteredTable(t, s, "p", 20000)

	query := "SELECT count(*) FROM p WHERE k >= 5000 AND k < 5100"
	if txt := explainText(t, s, query); strings.Contains(txt, "Pushdown:") {
		t.Fatalf("config off but plan pushed:\n%s", txt)
	}
	mustExec(t, s, "SET enable_zonemaps = on")
	if txt := explainText(t, s, query); !strings.Contains(txt, "Pushdown:") {
		t.Fatalf("SET enable_zonemaps=on did not enable pushdown:\n%s", txt)
	}
	res := mustExec(t, s, "EXPLAIN ANALYZE "+query)
	skipped := false
	for _, r := range res.Rows {
		if strings.HasPrefix(r[0].Text(), "blocks:") && !strings.Contains(r[0].Text(), "skipped=0") {
			skipped = true
		}
	}
	if !skipped {
		t.Fatalf("session-enabled pushdown skipped nothing: %v", res.Rows)
	}
}

// TestPushdownNullsAndUpdatesStayCorrect: NULL-bearing data, deletes and
// updates keep pushdown results identical to a filtered full scan.
func TestPushdownNullsAndUpdatesStayCorrect(t *testing.T) {
	_, s := newTestEngine(t, 1)
	mustExec(t, s, "CREATE TABLE n (k int, v int) WITH (appendonly=true, orientation=column) DISTRIBUTED BY (k)")
	bulkInsert(t, s, "n", 9000, 0, func(i int) string {
		if i%3 == 0 {
			return fmt.Sprintf("(%d,NULL)", i)
		}
		return fmt.Sprintf("(%d,%d)", i, i)
	})
	mustExec(t, s, "DELETE FROM n WHERE k >= 5000 AND k < 5050")
	mustExec(t, s, "UPDATE n SET v = 1 WHERE k = 4100")

	check := func(q string) {
		t.Helper()
		on := mustExec(t, s, q).Rows
		mustExec(t, s, "SET enable_zonemaps = off")
		off := mustExec(t, s, q).Rows
		mustExec(t, s, "SET enable_zonemaps = on")
		if len(on) != len(off) {
			t.Fatalf("%s: %d vs %d rows", q, len(on), len(off))
		}
		for i := range on {
			if !on[i].Equal(off[i]) {
				t.Fatalf("%s row %d: %v vs %v", q, i, on[i], off[i])
			}
		}
	}
	check("SELECT count(*) FROM n WHERE k >= 4090 AND k <= 5100")
	check("SELECT count(*), sum(v) FROM n WHERE v >= 4000 AND v < 4200")
	check("SELECT count(*) FROM n WHERE v = 4100") // updated row moved
	check("SELECT count(*) FROM n WHERE k = 5010") // deleted range
}
