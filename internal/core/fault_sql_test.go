package core

import (
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/types"
)

// faultStats runs SHOW fault_stats and returns the stat→value rows.
func faultStats(t *testing.T, s *Session) map[string]types.Datum {
	t.Helper()
	res := mustExec(t, s, "SHOW fault_stats")
	out := make(map[string]types.Datum, len(res.Rows))
	for _, r := range res.Rows {
		out[r[0].Text()] = r[1]
	}
	return out
}

// TestFaultSQLLifecycle drives the whole admin surface through SQL:
// inject, observe it fire via STATUS and SHOW fault_stats, reset, and
// confirm the registry is clean again.
func TestFaultSQLLifecycle(t *testing.T) {
	_, s := newTestEngine(t, 2)
	ctx := context.Background()
	mustExec(t, s, "CREATE TABLE t (a int, b int) DISTRIBUTED BY (a)")

	res := mustExec(t, s, "FAULT STATUS")
	if res.Tag != "FAULT STATUS" || len(res.Rows) != 0 {
		t.Fatalf("initial status: tag=%q rows=%v", res.Tag, res.Rows)
	}
	want := []string{"point", "segment", "action", "hits", "triggers", "exhausted"}
	if len(res.Columns) != len(want) {
		t.Fatalf("status columns: %v", res.Columns)
	}
	for i, c := range want {
		if res.Columns[i] != c {
			t.Fatalf("status column %d = %q, want %q", i, res.Columns[i], c)
		}
	}

	// A bounded dispatch_send error is absorbed by the retry loop, so the
	// statement still succeeds while the spec's counters move.
	res = mustExec(t, s, "FAULT INJECT 'dispatch_send' ACTION 'error' SEGMENT -1 COUNT 2")
	if res.Tag != "FAULT INJECT" {
		t.Fatalf("inject tag %q", res.Tag)
	}
	res = mustExec(t, s, "FAULT STATUS")
	if len(res.Rows) != 1 {
		t.Fatalf("status rows after inject: %v", res.Rows)
	}
	row := res.Rows[0]
	if row[0].Text() != "dispatch_send" || row[1].Int() != -1 || row[2].Text() != "error" {
		t.Fatalf("status row: %v", row)
	}
	if row[5].Text() != "off" {
		t.Fatalf("fresh spec already exhausted: %v", row)
	}

	mustExec(t, s, "INSERT INTO t VALUES (1, 10), (2, 20)")

	res = mustExec(t, s, "FAULT STATUS")
	row = res.Rows[0]
	if row[3].Int() == 0 || row[4].Int() != 2 {
		t.Fatalf("spec did not fire: hits=%d triggers=%d", row[3].Int(), row[4].Int())
	}
	if row[5].Text() != "on" {
		t.Fatalf("count-capped spec not exhausted: %v", row)
	}

	st := faultStats(t, s)
	if st["fault_points_enabled"].Int() != 1 {
		t.Fatal("fault points not enabled")
	}
	if st["armed_specs"].Int() != 1 {
		t.Fatalf("armed_specs = %d", st["armed_specs"].Int())
	}
	if st["point_triggers"].Int() < 2 || st["dispatch_retries"].Int() < 2 {
		t.Fatalf("stats did not move: %v / %v", st["point_triggers"], st["dispatch_retries"])
	}
	for seg := 0; seg < 2; seg++ {
		key := "breaker_seg" + string(rune('0'+seg))
		if st[key].Text() != "closed" {
			t.Fatalf("%s = %q", key, st[key].Text())
		}
	}

	res = mustExec(t, s, "FAULT RESET 'dispatch_send'")
	if res.Tag != "FAULT RESET" || res.RowsAffected != 1 {
		t.Fatalf("reset: tag=%q n=%d", res.Tag, res.RowsAffected)
	}
	if res = mustExec(t, s, "FAULT STATUS"); len(res.Rows) != 0 {
		t.Fatalf("specs survive reset: %v", res.Rows)
	}
	// Lifetime counters survive the reset.
	if st = faultStats(t, s); st["point_triggers"].Int() < 2 {
		t.Fatalf("reset erased lifetime counters: %v", st["point_triggers"])
	}

	// Bare RESET clears everything and is idempotent.
	mustExec(t, s, "FAULT INJECT wal_append ACTION skip SEGMENT 0")
	mustExec(t, s, "FAULT INJECT spill_write ACTION error")
	if res = mustExec(t, s, "FAULT RESET"); res.RowsAffected != 2 {
		t.Fatalf("reset-all cleared %d specs", res.RowsAffected)
	}
	if res = mustExec(t, s, "FAULT RESET"); res.RowsAffected != 0 {
		t.Fatalf("second reset-all cleared %d specs", res.RowsAffected)
	}

	mustExec(t, s, "INSERT INTO t VALUES (3, 30)")
	if res = mustExec(t, s, "SELECT count(*) FROM t"); res.Rows[0][0].Int() != 3 {
		t.Fatalf("post-reset count: %v", res.Rows)
	}
	_ = ctx
}

// TestFaultSQLInjectGrammar covers the clause forms the parser accepts:
// identifier vs string point names, every optional clause, and clause
// order independence.
func TestFaultSQLInjectGrammar(t *testing.T) {
	_, s := newTestEngine(t, 2)

	mustExec(t, s, "FAULT INJECT dispatch_send")
	res := mustExec(t, s, "FAULT STATUS")
	if len(res.Rows) != 1 || res.Rows[0][2].Text() != "error" {
		t.Fatalf("default action: %v", res.Rows)
	}
	if res.Rows[0][1].Int() != -1 {
		t.Fatalf("default segment: %v", res.Rows)
	}
	mustExec(t, s, "FAULT RESET")

	// Clauses in arbitrary order, string action, explicit everything.
	mustExec(t, s, "FAULT INJECT 'twopc_prepare' PROBABILITY 25 SEED 42 ACTION 'sleep' SLEEP 1 SEGMENT 1 START 2 COUNT 5 MESSAGE 'boom'")
	res = mustExec(t, s, "FAULT STATUS")
	row := res.Rows[0]
	if row[0].Text() != "twopc_prepare" || row[1].Int() != 1 || row[2].Text() != "sleep" {
		t.Fatalf("full-clause spec: %v", row)
	}
	mustExec(t, s, "FAULT RESET")

	// RESUME with no armed hang touches nothing.
	if res = mustExec(t, s, "FAULT RESUME 'dispatch_send'"); res.Tag != "FAULT RESUME" || res.RowsAffected != 0 {
		t.Fatalf("resume: tag=%q n=%d", res.Tag, res.RowsAffected)
	}
}

// TestFaultSQLValidation: bad specs are rejected at the session layer with
// errors a human can act on, and leave nothing armed.
func TestFaultSQLValidation(t *testing.T) {
	_, s := newTestEngine(t, 1)
	ctx := context.Background()
	cases := []struct{ q, needle string }{
		{"FAULT INJECT dispatch_send ACTION explode", "unknown fault action"},
		{"FAULT INJECT dispatch_send PROBABILITY 150", "probability"},
	}
	for _, tc := range cases {
		_, err := s.Exec(ctx, tc.q)
		if err == nil || !strings.Contains(err.Error(), tc.needle) {
			t.Fatalf("Exec(%q) = %v, want %q", tc.q, err, tc.needle)
		}
	}
	if res := mustExec(t, s, "FAULT STATUS"); len(res.Rows) != 0 {
		t.Fatalf("rejected specs left state behind: %v", res.Rows)
	}
}

// TestFaultSQLDisabledEngine: an engine booted with NoFaultPoints refuses
// the whole FAULT surface and reports disabled stats, but otherwise works.
func TestFaultSQLDisabledEngine(t *testing.T) {
	cfg := cluster.GPDB6(2)
	cfg.NoFaultPoints = true
	e := NewEngine(cfg)
	t.Cleanup(e.Close)
	s, err := e.NewSession("")
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for _, q := range []string{"FAULT STATUS", "FAULT INJECT dispatch_send", "FAULT RESET", "FAULT RESUME x"} {
		if _, err := s.Exec(ctx, q); !errors.Is(err, cluster.ErrFaultsDisabled) {
			t.Fatalf("Exec(%q) = %v, want ErrFaultsDisabled", q, err)
		}
	}
	st := faultStats(t, s)
	if st["fault_points_enabled"].Int() != 0 || st["armed_specs"].Int() != 0 {
		t.Fatalf("disabled stats: %v", st)
	}
	mustExec(t, s, "CREATE TABLE t (a int, b int) DISTRIBUTED BY (a)")
	mustExec(t, s, "INSERT INTO t VALUES (1, 1)")
	if res := mustExec(t, s, "SELECT count(*) FROM t"); res.Rows[0][0].Int() != 1 {
		t.Fatalf("disabled engine broken: %v", res.Rows)
	}
}
