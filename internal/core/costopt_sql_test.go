package core

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/types"
)

// loadStarSchema creates a small star: fact (nFact rows, join key m),
// mid (nMid rows, keyed by id, foreign key s into small) and small (nSmall
// rows). Distribution keys are chosen so the joins are misaligned and the
// planner must move data.
func loadStarSchema(t *testing.T, s *Session, engine string, nFact, nMid, nSmall int) {
	t.Helper()
	mustExec(t, s, "CREATE TABLE fact (a int, m int, v int)"+engine+" DISTRIBUTED BY (a)")
	mustExec(t, s, "CREATE TABLE mid (id int, s int, w int)"+engine+" DISTRIBUTED BY (w)")
	mustExec(t, s, "CREATE TABLE small (id int, tag int)"+engine+" DISTRIBUTED BY (tag)")
	bulkInsert(t, s, "fact", nFact, 0, func(i int) string { return fmt.Sprintf("(%d,%d,%d)", i, i%nMid, i%151) })
	bulkInsert(t, s, "mid", nMid, 0, func(i int) string { return fmt.Sprintf("(%d,%d,%d)", i, i%nSmall, i*7) })
	bulkInsert(t, s, "small", nSmall, 0, func(i int) string { return fmt.Sprintf("(%d,%d)", i, i%13) })
}

// TestCostOptOnOffResultEquality: the same join queries return byte-identical
// results with the cost-based optimizer on and off, serially and at
// exec_parallelism=4, across all three storage engines — the acceptance
// property of plan-shape-only optimization. Queries are ordered so the
// reordered plans' different emission order cannot hide behind set equality.
func TestCostOptOnOffResultEquality(t *testing.T) {
	queries := []string{
		"SELECT fact.a, mid.s FROM fact JOIN mid ON fact.m = mid.id WHERE fact.v < 20 ORDER BY fact.a",
		"SELECT fact.a, small.tag FROM fact JOIN mid ON fact.m = mid.id JOIN small ON mid.s = small.id WHERE small.id < 3 ORDER BY fact.a LIMIT 200",
		"SELECT small.tag, count(*), sum(fact.v) FROM fact JOIN mid ON fact.m = mid.id JOIN small ON mid.s = small.id GROUP BY small.tag ORDER BY small.tag",
		"SELECT count(*) FROM fact JOIN mid ON fact.m = mid.id WHERE mid.s = 3 AND fact.v >= 100",
		"SELECT mid.id, small.tag FROM mid JOIN small ON mid.s = small.id WHERE small.tag <= 2 ORDER BY mid.id, small.tag",
	}
	engines := map[string]string{
		"heap":   "",
		"ao-row": " WITH (appendonly=true)",
		"ao-col": " WITH (appendonly=true, orientation=column)",
	}
	for engName, engine := range engines {
		type key struct {
			costopt bool
			dop     int
		}
		results := map[key]map[string][]types.Row{}
		for _, co := range []bool{true, false} {
			for _, dop := range []int{1, 4} {
				cfg := cluster.GPDB6(2)
				cfg.EnableCostOpt = co
				cfg.ExecParallelism = dop
				e := NewEngine(cfg)
				s, err := e.NewSession("")
				if err != nil {
					e.Close()
					t.Fatal(err)
				}
				loadStarSchema(t, s, engine, 4000, 100, 10)
				if err := s.SetOptimizer("orca"); err != nil {
					e.Close()
					t.Fatal(err)
				}
				mustExec(t, s, "ANALYZE")
				byQuery := map[string][]types.Row{}
				for _, q := range queries {
					res, err := s.Exec(context.Background(), q)
					if err != nil {
						e.Close()
						t.Fatalf("%s (%s costopt=%v dop=%d): %v", q, engName, co, dop, err)
					}
					byQuery[q] = res.Rows
				}
				results[key{co, dop}] = byQuery
				e.Close()
			}
		}
		base := results[key{false, 1}]
		for k, byQuery := range results {
			for _, q := range queries {
				want, got := base[q], byQuery[q]
				if len(want) != len(got) {
					t.Fatalf("%s (%s costopt=%v dop=%d): %d rows vs %d", q, engName, k.costopt, k.dop, len(got), len(want))
				}
				for i := range want {
					if !want[i].Equal(got[i]) {
						t.Fatalf("%s (%s costopt=%v dop=%d) row %d: %v vs %v", q, engName, k.costopt, k.dop, i, got[i], want[i])
					}
				}
			}
		}
	}
}

// TestAnalyzeAndExplainCosts: ANALYZE fills the catalog statistics, EXPLAIN
// shows per-node cost/rows/error-bound annotations, un-analyzed tables are
// flagged stats=none, and writes invalidate the statistics.
func TestAnalyzeAndExplainCosts(t *testing.T) {
	_, s := newTestEngine(t, 2)
	loadStarSchema(t, s, "", 2000, 100, 10)
	if err := s.SetOptimizer("orca"); err != nil {
		t.Fatal(err)
	}

	q := "SELECT fact.a, mid.s FROM fact JOIN mid ON fact.m = mid.id WHERE fact.v < 20 ORDER BY fact.a"
	txt := explainText(t, s, q)
	if !strings.Contains(txt, "cost=") || !strings.Contains(txt, "rows=") || !strings.Contains(txt, "±") {
		t.Fatalf("EXPLAIN lacks cost annotations:\n%s", txt)
	}
	if !strings.Contains(txt, "stats=none") {
		t.Fatalf("un-analyzed scans should be flagged stats=none:\n%s", txt)
	}

	res := mustExec(t, s, "ANALYZE")
	if res.Tag != "ANALYZE" {
		t.Fatalf("tag: %q", res.Tag)
	}
	txt = explainText(t, s, q)
	if strings.Contains(txt, "stats=none") {
		t.Fatalf("analyzed scans still flagged stats=none:\n%s", txt)
	}

	showStat := func(name string) int64 {
		t.Helper()
		res := mustExec(t, s, "SHOW optimizer_stats")
		for _, r := range res.Rows {
			if r[0].Text() == name {
				return r[1].Int()
			}
		}
		t.Fatalf("stat %q missing", name)
		return 0
	}
	if got := showStat("analyzed_tables"); got != 3 {
		t.Fatalf("analyzed_tables = %d, want 3", got)
	}

	// A write invalidates the statistics; the scans degrade to stats=none
	// until the next ANALYZE.
	mustExec(t, s, "INSERT INTO fact VALUES (100001, 1, 1)")
	txt = explainText(t, s, q)
	if !strings.Contains(txt, "stats=none") {
		t.Fatalf("stale statistics should be flagged stats=none:\n%s", txt)
	}
	mustExec(t, s, "ANALYZE fact")
	txt = explainText(t, s, q)
	if strings.Contains(txt, "stats=none") {
		t.Fatalf("re-analyzed scan still flagged stats=none:\n%s", txt)
	}

	// EXPLAIN ANALYZE reports estimated vs actual rows per node.
	out := mustExec(t, s, "EXPLAIN ANALYZE "+q)
	var joined strings.Builder
	for _, r := range out.Rows {
		joined.WriteString(r[0].Text())
		joined.WriteByte('\n')
	}
	if !strings.Contains(joined.String(), "actual=") {
		t.Fatalf("EXPLAIN ANALYZE lacks actual= annotations:\n%s", joined.String())
	}
}

// TestMisestimateTriggersRobustFallback: a perfectly correlated conjunction
// breaks the independence assumption, the executor catches the actual
// cardinality outside the estimate's error bound, and the next execution of
// the same statement falls back to the robust plan.
func TestMisestimateTriggersRobustFallback(t *testing.T) {
	_, s := newTestEngine(t, 2)
	mustExec(t, s, "CREATE TABLE corr (a int, b int) DISTRIBUTED BY (a)")
	// b == a exactly: P(a<1000 AND b<1000) is 0.2, not the 0.04 the
	// independence assumption predicts.
	bulkInsert(t, s, "corr", 5000, 0, func(i int) string { return fmt.Sprintf("(%d,%d)", i, i) })
	if err := s.SetOptimizer("orca"); err != nil {
		t.Fatal(err)
	}
	mustExec(t, s, "ANALYZE corr")

	showStat := func(name string) int64 {
		t.Helper()
		res := mustExec(t, s, "SHOW optimizer_stats")
		for _, r := range res.Rows {
			if r[0].Text() == name {
				return r[1].Int()
			}
		}
		t.Fatalf("stat %q missing", name)
		return 0
	}

	q := "SELECT count(*) FROM corr WHERE a < 1000 AND b < 1000"
	res := mustExec(t, s, q)
	if got := res.Rows[0][0].Int(); got != 1000 {
		t.Fatalf("count = %d, want 1000", got)
	}
	if got := showStat("misestimates"); got < 1 {
		t.Fatalf("correlated predicate recorded no misestimate")
	}
	if got := showStat("robust_fallbacks"); got != 0 {
		t.Fatalf("first execution should not have used the robust plan (fallbacks=%d)", got)
	}

	// Same statement again: the planner sees the recorded misestimate and
	// switches to the robust plan; results are unchanged.
	res = mustExec(t, s, q)
	if got := res.Rows[0][0].Int(); got != 1000 {
		t.Fatalf("robust re-run count = %d, want 1000", got)
	}
	if got := showStat("robust_fallbacks"); got < 1 {
		t.Fatalf("second execution did not fall back to the robust plan")
	}

	// A well-estimated query on the same table records nothing.
	before := showStat("misestimates")
	mustExec(t, s, "SELECT count(*) FROM corr WHERE a < 1000")
	if got := showStat("misestimates"); got != before {
		t.Fatalf("well-estimated query recorded a misestimate (%d -> %d)", before, got)
	}
}

// TestBroadcastThresholdSetting: SET broadcast_threshold moves the legacy
// heuristic's cutoff, and rejects non-positive values.
func TestBroadcastThresholdSetting(t *testing.T) {
	_, s := newTestEngine(t, 2)
	mustExec(t, s, "CREATE TABLE big (a int, b int) DISTRIBUTED BY (a)")
	mustExec(t, s, "CREATE TABLE dim (k int, v int) DISTRIBUTED BY (v)")
	bulkInsert(t, s, "big", 500, 0, func(i int) string { return fmt.Sprintf("(%d,%d)", i, i%50) })
	bulkInsert(t, s, "dim", 100, 0, func(i int) string { return fmt.Sprintf("(%d,%d)", i, i*3) })
	if err := s.SetOptimizer("orca"); err != nil {
		t.Fatal(err)
	}
	mustExec(t, s, "SET enable_costopt = off")

	res := mustExec(t, s, "SHOW broadcast_threshold")
	if res.Rows[0][0].Text() != "2000" {
		t.Fatalf("default broadcast_threshold = %q, want 2000", res.Rows[0][0].Text())
	}

	q := "SELECT big.a, dim.v FROM big JOIN dim ON big.b = dim.k"
	if pl := explainText(t, s, q); !strings.Contains(pl, "Broadcast Motion") {
		t.Fatalf("100-row inner side under the default threshold should broadcast:\n%s", pl)
	}
	mustExec(t, s, "SET broadcast_threshold = 50")
	if pl := explainText(t, s, q); strings.Contains(pl, "Broadcast Motion") {
		t.Fatalf("threshold 50 should disable the 100-row broadcast:\n%s", pl)
	}
	if _, err := s.Exec(context.Background(), "SET broadcast_threshold = 0"); err == nil {
		t.Fatal("SET broadcast_threshold = 0 should be rejected")
	}
}
