package core

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/exec"
	"repro/internal/fault"
)

// spillFaultQueries maps each spilling operator to a query that forces it
// to spill under the tiny 32 KiB budget.
var spillFaultQueries = []struct {
	site  string
	query string
}{
	{"sort", "SELECT a, b FROM t ORDER BY b, a"},
	{"agg", "SELECT b, count(*), sum(a) FROM t GROUP BY b ORDER BY b"},
	{"join", "SELECT t.a, u.d FROM t JOIN u ON t.a = u.c ORDER BY t.a, u.d"},
}

// TestSpillFaultCleanupEverySite injects a disk-full error mid-write at
// every spill site (sort run dump, hash-agg flush, hash-join build) and at
// file creation, and checks the graceful-degradation contract: the
// statement is canceled with the typed disk-full error, no temp files or
// directories survive, the operators release every file themselves (the
// statement-end backstop finds nothing, so spill_leaks stays 0), and the
// session keeps working.
func TestSpillFaultCleanupEverySite(t *testing.T) {
	for _, tc := range spillFaultQueries {
		for _, point := range []string{fault.SpillCreate, fault.SpillWrite} {
			t.Run(tc.site+"/"+point, func(t *testing.T) {
				e, constrained, admin := newSpillEngine(t, 2, 1)
				loadSpillTables(t, admin, true)
				before := spillTempDirs(t)
				c := e.Cluster()

				// Start 2 lets the first hit through so the failure lands
				// mid-spill, with state already on disk to clean up.
				if err := c.InjectFault(fault.Spec{Point: point, Seg: fault.AllSegments, Action: fault.ActError, Start: 2}); err != nil {
					t.Fatal(err)
				}
				_, err := constrained.Exec(context.Background(), tc.query)
				c.ResetFault(point)
				if err == nil {
					t.Fatalf("%s under %s fault succeeded", tc.site, point)
				}
				if !errors.Is(err, exec.ErrDiskFull) {
					t.Fatalf("error is not ErrDiskFull: %v", err)
				}
				if !strings.Contains(err.Error(), "disk full") {
					t.Fatalf("error text leaks nothing useful: %v", err)
				}
				for d := range spillTempDirs(t) {
					if !before[d] {
						t.Fatalf("spill temp dir leaked: %s", d)
					}
				}
				if leaks := c.FaultStats().SpillLeaks; leaks != 0 {
					t.Fatalf("operators leaned on the cleanup backstop %d times", leaks)
				}

				// The session and the budget survive: the same query now
				// spills successfully and matches the unconstrained plan.
				base := mustExec(t, admin, tc.query)
				got := mustExec(t, constrained, tc.query)
				if len(got.Rows) != len(base.Rows) {
					t.Fatalf("post-fault row count %d, want %d", len(got.Rows), len(base.Rows))
				}
				for i := range base.Rows {
					if !base.Rows[i].Equal(got.Rows[i]) {
						t.Fatalf("post-fault row %d differs: %v vs %v", i, got.Rows[i], base.Rows[i])
					}
				}
			})
		}
	}
}

// TestSpillFaultRepeatedNoAccountingLeak hammers one session with
// injected spill failures: if an aborted statement leaked operator-memory
// or vmem accounting, repeated failures would exhaust the group's quota
// and admission would start refusing work. Twenty failures in, the session
// still runs a clean spilling query.
func TestSpillFaultRepeatedNoAccountingLeak(t *testing.T) {
	e, constrained, admin := newSpillEngine(t, 2, 1)
	loadSpillTables(t, admin, false)
	c := e.Cluster()
	ctx := context.Background()
	before := spillTempDirs(t)
	for i := 0; i < 20; i++ {
		point := fault.SpillWrite
		if i%2 == 1 {
			point = fault.SpillCreate
		}
		if err := c.InjectFault(fault.Spec{Point: point, Seg: fault.AllSegments, Action: fault.ActError, Start: 1 + i%3}); err != nil {
			t.Fatal(err)
		}
		if _, err := constrained.Exec(ctx, "SELECT a, b FROM t ORDER BY b, a"); !errors.Is(err, exec.ErrDiskFull) {
			t.Fatalf("round %d: %v", i, err)
		}
		c.ResetFault(point)
	}
	if leaks := c.FaultStats().SpillLeaks; leaks != 0 {
		t.Fatalf("spill files leaked to the backstop: %d", leaks)
	}
	for d := range spillTempDirs(t) {
		if !before[d] {
			t.Fatalf("spill temp dir leaked: %s", d)
		}
	}
	res := mustExec(t, constrained, "SELECT count(*) FROM t")
	if res.Rows[0][0].Int() != 6000 {
		t.Fatalf("post-hammer count: %v", res.Rows)
	}
	mustExec(t, constrained, "SELECT a, b FROM t ORDER BY b, a")
}

// TestSpillFaultConcurrentSessions runs constrained spilling queries from
// several sessions while spill faults fire probabilistically — the cleanup
// paths must be race-clean and no session's failure may leak files into
// another's statement lifetime.
func TestSpillFaultConcurrentSessions(t *testing.T) {
	e, _, admin := newSpillEngine(t, 2, 1)
	loadSpillTables(t, admin, false)
	c := e.Cluster()
	before := spillTempDirs(t)
	if err := c.InjectFault(fault.Spec{Point: fault.SpillWrite, Seg: fault.AllSegments, Action: fault.ActError, Probability: 30, Seed: 7}); err != nil {
		t.Fatal(err)
	}
	const workers = 4
	errc := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func() {
			s, err := e.NewSession("spiller")
			if err != nil {
				errc <- err
				return
			}
			s.UseResourceGroup(true, 0, 0)
			ctx := context.Background()
			for i := 0; i < 8; i++ {
				_, err := s.Exec(ctx, "SELECT b, count(*) FROM t GROUP BY b ORDER BY b")
				if err != nil && !errors.Is(err, exec.ErrDiskFull) {
					errc <- fmt.Errorf("unexpected error: %w", err)
					return
				}
			}
			errc <- nil
		}()
	}
	for w := 0; w < workers; w++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
	c.ResetFault(fault.SpillWrite)
	if leaks := c.FaultStats().SpillLeaks; leaks != 0 {
		t.Fatalf("concurrent spill failures leaked %d files to the backstop", leaks)
	}
	for d := range spillTempDirs(t) {
		if !before[d] {
			t.Fatalf("spill temp dir leaked: %s", d)
		}
	}
}
