package core

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

func TestAppendOptimizedTablesViaSQL(t *testing.T) {
	_, s := newTestEngine(t, 3)
	mustExec(t, s, "CREATE TABLE ao (a int, b text) WITH (appendonly=true) DISTRIBUTED BY (a)")
	mustExec(t, s, "CREATE TABLE aoc (a int, b text) WITH (appendonly=true, orientation=column) DISTRIBUTED BY (a)")
	for i := 0; i < 50; i++ {
		mustExec(t, s, fmt.Sprintf("INSERT INTO ao VALUES (%d, 'r%d')", i, i))
		mustExec(t, s, fmt.Sprintf("INSERT INTO aoc VALUES (%d, 'r%d')", i, i))
	}
	for _, tbl := range []string{"ao", "aoc"} {
		res := mustExec(t, s, "SELECT count(*), min(a), max(a) FROM "+tbl)
		r := res.Rows[0]
		if r[0].Int() != 50 || r[1].Int() != 0 || r[2].Int() != 49 {
			t.Fatalf("%s aggregates: %v", tbl, r)
		}
	}
	// AO tables support DELETE via the visibility map and UPDATE as
	// delete+insert.
	res := mustExec(t, s, "DELETE FROM ao WHERE a < 10")
	if res.RowsAffected != 10 {
		t.Fatalf("ao delete: %d", res.RowsAffected)
	}
	res = mustExec(t, s, "UPDATE aoc SET b = 'updated' WHERE a = 20")
	if res.RowsAffected != 1 {
		t.Fatalf("aoc update: %d", res.RowsAffected)
	}
	res = mustExec(t, s, "SELECT b FROM aoc WHERE a = 20")
	if res.Rows[0][0].Text() != "updated" {
		t.Fatalf("aoc row after update: %v", res.Rows)
	}
	res = mustExec(t, s, "SELECT count(*) FROM ao")
	if res.Rows[0][0].Int() != 40 {
		t.Fatalf("ao count after delete: %v", res.Rows)
	}
}

func TestSelectForUpdateBlocksWriters(t *testing.T) {
	e, s1 := newTestEngine(t, 2)
	s2, _ := e.NewSession("")
	mustExec(t, s1, "CREATE TABLE t (a int, b int) DISTRIBUTED BY (a)")
	mustExec(t, s1, "INSERT INTO t VALUES (1, 1), (2, 2)")

	mustExec(t, s1, "BEGIN")
	res := mustExec(t, s1, "SELECT * FROM t WHERE a = 1 FOR UPDATE")
	if len(res.Rows) != 1 {
		t.Fatalf("for update rows: %v", res.Rows)
	}
	// A concurrent update of the locked row must block until commit.
	st := goExec(s2, "UPDATE t SET b = 99 WHERE a = 1")
	if !st.blocked(t, 80*time.Millisecond) {
		t.Fatal("FOR UPDATE did not block the writer")
	}
	mustExec(t, s1, "COMMIT")
	if err := st.wait(t, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	// A different row is never blocked.
	mustExec(t, s1, "BEGIN")
	mustExec(t, s1, "SELECT * FROM t WHERE a = 1 FOR UPDATE")
	st2 := goExec(s2, "UPDATE t SET b = 5 WHERE a = 2")
	if err := st2.wait(t, 2*time.Second); err != nil {
		t.Fatal(err)
	}
	mustExec(t, s1, "COMMIT")
}

func TestReadCommittedSeesNewDataPerStatement(t *testing.T) {
	e, s1 := newTestEngine(t, 2)
	s2, _ := e.NewSession("")
	mustExec(t, s1, "CREATE TABLE t (a int, b int) DISTRIBUTED BY (a)")
	mustExec(t, s1, "INSERT INTO t VALUES (1, 1)")

	mustExec(t, s1, "BEGIN")
	res := mustExec(t, s1, "SELECT count(*) FROM t")
	if res.Rows[0][0].Int() != 1 {
		t.Fatal("initial count")
	}
	// Another session commits a row mid-transaction.
	mustExec(t, s2, "INSERT INTO t VALUES (2, 2)")
	// Read committed: the next statement takes a fresh snapshot and sees it.
	res = mustExec(t, s1, "SELECT count(*) FROM t")
	if res.Rows[0][0].Int() != 2 {
		t.Fatalf("read-committed statement did not see the new commit: %v", res.Rows)
	}
	mustExec(t, s1, "COMMIT")
}

func TestVacuumViaSQL(t *testing.T) {
	_, s := newTestEngine(t, 2)
	mustExec(t, s, "CREATE TABLE t (a int, b int) DISTRIBUTED BY (a)")
	mustExec(t, s, "INSERT INTO t VALUES (1, 0), (2, 0)")
	for i := 0; i < 3; i++ {
		mustExec(t, s, "UPDATE t SET b = b + 1")
	}
	res := mustExec(t, s, "VACUUM t")
	if res.RowsAffected != 6 { // 2 rows × 3 superseded versions
		t.Fatalf("vacuum reclaimed %d, want 6", res.RowsAffected)
	}
	res = mustExec(t, s, "SELECT sum(b) FROM t")
	if res.Rows[0][0].Int() != 6 {
		t.Fatalf("data after vacuum: %v", res.Rows)
	}
}

func TestErrTxnAbortedStateMachine(t *testing.T) {
	_, s := newTestEngine(t, 2)
	mustExec(t, s, "CREATE TABLE t (a int) DISTRIBUTED BY (a)")
	mustExec(t, s, "BEGIN")
	// A failing statement poisons the block.
	if _, err := s.Exec(context.Background(), "SELECT * FROM missing"); err == nil {
		t.Fatal("expected error")
	}
	if _, err := s.Exec(context.Background(), "SELECT 1"); !errors.Is(err, ErrTxnAborted) {
		t.Fatalf("poisoned txn error: %v", err)
	}
	// COMMIT of a failed block is a rollback; afterwards all is well.
	res := mustExec(t, s, "COMMIT")
	if res.Tag != "ROLLBACK" {
		t.Fatalf("commit tag: %s", res.Tag)
	}
	mustExec(t, s, "SELECT 1")
}

func TestResourceGroupAdmissionViaSQL(t *testing.T) {
	e, admin := newTestEngine(t, 2)
	mustExec(t, admin, "CREATE RESOURCE GROUP tiny WITH (CONCURRENCY=1, MEMORY_LIMIT=10, CPU_RATE_LIMIT=10)")
	mustExec(t, admin, "CREATE ROLE worker RESOURCE GROUP tiny")
	mustExec(t, admin, "CREATE TABLE t (a int) DISTRIBUTED BY (a)")

	s1, _ := e.NewSession("worker")
	s2, _ := e.NewSession("worker")
	s1.UseResourceGroup(true, 0, 0)
	s2.UseResourceGroup(true, 0, 0)

	mustExec(t, s1, "BEGIN")
	// The second worker session cannot be admitted while the first holds
	// the group's only concurrency slot.
	st := goExec(s2, "SELECT 1")
	if !st.blocked(t, 80*time.Millisecond) {
		t.Fatal("CONCURRENCY=1 did not gate the second session")
	}
	mustExec(t, s1, "COMMIT")
	if err := st.wait(t, 5*time.Second); err != nil {
		t.Fatal(err)
	}
}

func TestDistinctAndHaving(t *testing.T) {
	_, s := newTestEngine(t, 3)
	mustExec(t, s, "CREATE TABLE t (a int, b int) DISTRIBUTED BY (a)")
	for i := 0; i < 30; i++ {
		mustExec(t, s, fmt.Sprintf("INSERT INTO t VALUES (%d, %d)", i, i%3))
	}
	res := mustExec(t, s, "SELECT DISTINCT b FROM t ORDER BY b")
	if len(res.Rows) != 3 {
		t.Fatalf("distinct: %v", res.Rows)
	}
	res = mustExec(t, s, "SELECT b, count(*) FROM t GROUP BY b HAVING count(*) > 9 ORDER BY b")
	if len(res.Rows) != 3 {
		t.Fatalf("having (all groups have 10): %v", res.Rows)
	}
	res = mustExec(t, s, "SELECT b, count(DISTINCT a) FROM t GROUP BY b ORDER BY b")
	if len(res.Rows) != 3 || res.Rows[0][1].Int() != 10 {
		t.Fatalf("count distinct: %v", res.Rows)
	}
}

func TestLeftJoinViaSQL(t *testing.T) {
	_, s := newTestEngine(t, 2)
	mustExec(t, s, "CREATE TABLE l (id int, v int) DISTRIBUTED BY (id)")
	mustExec(t, s, "CREATE TABLE r (id int, w int) DISTRIBUTED BY (id)")
	mustExec(t, s, "INSERT INTO l VALUES (1, 10), (2, 20), (3, 30)")
	mustExec(t, s, "INSERT INTO r VALUES (1, 100), (3, 300)")
	res := mustExec(t, s, "SELECT l.id, r.w FROM l LEFT JOIN r ON l.id = r.id ORDER BY l.id")
	if len(res.Rows) != 3 {
		t.Fatalf("left join rows: %v", res.Rows)
	}
	if !res.Rows[1][1].IsNull() {
		t.Fatalf("unmatched row not null-extended: %v", res.Rows[1])
	}
}

func TestCaseExpressionViaSQL(t *testing.T) {
	_, s := newTestEngine(t, 2)
	mustExec(t, s, "CREATE TABLE t (a int) DISTRIBUTED BY (a)")
	mustExec(t, s, "INSERT INTO t VALUES (-5), (0), (7)")
	res := mustExec(t, s, `
SELECT a, CASE WHEN a > 0 THEN 'pos' WHEN a < 0 THEN 'neg' ELSE 'zero' END AS sign
FROM t ORDER BY a`)
	want := []string{"neg", "zero", "pos"}
	for i, r := range res.Rows {
		if r[1].Text() != want[i] {
			t.Fatalf("case row %d: %v", i, r)
		}
	}
}
