package gdd

import (
	"math/rand"
	"testing"

	"repro/internal/lockmgr"
)

// oracleDeadlock decides deadlock by semantics rather than reduction: it
// simulates the optimistic release process to a fixed point. A vertex can
// "make progress" when it has no outgoing edges; a progressing vertex
// releases all locks (removing edges into it everywhere) — and a vertex
// with no LOCAL outgoing edges releases its tuple locks in that segment
// (removing dotted edges into it there). If the fixed point still has
// edges, no transaction in it can ever progress: deadlock.
//
// This is an independent re-implementation used to cross-check Reduce on
// random graphs; it intentionally mirrors the greedy *semantics* with a
// different (naive, quadratic) mechanism.
func oracleDeadlock(g *GlobalGraph) bool {
	type edge struct {
		seg SegmentID
		e   lockmgr.Edge
	}
	var edges []edge
	for _, lg := range g.Locals {
		for _, e := range lg.Edges {
			edges = append(edges, edge{seg: lg.Segment, e: e})
		}
	}
	for {
		// Compute out-degrees.
		globalOut := map[lockmgr.TxnID]int{}
		localOut := map[SegmentID]map[lockmgr.TxnID]int{}
		for _, ed := range edges {
			globalOut[ed.e.Waiter]++
			if localOut[ed.seg] == nil {
				localOut[ed.seg] = map[lockmgr.TxnID]int{}
			}
			localOut[ed.seg][ed.e.Waiter]++
		}
		var kept []edge
		removed := false
		for _, ed := range edges {
			if globalOut[ed.e.Holder] == 0 {
				removed = true
				continue
			}
			if !ed.e.Solid && localOut[ed.seg][ed.e.Holder] == 0 {
				removed = true
				continue
			}
			kept = append(kept, ed)
		}
		edges = kept
		if !removed {
			return len(edges) > 0
		}
	}
}

// TestReduceMatchesOracleOnRandomGraphs cross-checks the production
// reduction against the oracle over thousands of random multi-segment
// wait-for graphs.
func TestReduceMatchesOracleOnRandomGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(20210514)) // the paper's arXiv v3 date
	for trial := 0; trial < 5000; trial++ {
		nseg := 1 + rng.Intn(4)
		ntxn := 2 + rng.Intn(5)
		nedge := rng.Intn(10)
		g := &GlobalGraph{}
		for s := 0; s < nseg; s++ {
			g.Locals = append(g.Locals, LocalGraph{Segment: SegmentID(s - 1)})
		}
		for i := 0; i < nedge; i++ {
			s := rng.Intn(nseg)
			w := lockmgr.TxnID(1 + rng.Intn(ntxn))
			h := lockmgr.TxnID(1 + rng.Intn(ntxn))
			if w == h {
				continue
			}
			g.Locals[s].Edges = append(g.Locals[s].Edges, lockmgr.Edge{
				Waiter: w, Holder: h, Solid: rng.Intn(2) == 0,
			})
		}
		got, _ := Reduce(g)
		want := oracleDeadlock(g)
		if (len(got) > 0) != want {
			t.Fatalf("trial %d: Reduce says %v, oracle says %v\ngraph: %+v",
				trial, len(got) > 0, want, g.Locals)
		}
	}
}

// TestVictimAlwaysInResidual: the chosen victim must be a waiter of the
// residual graph (killing it must actually break a wait).
func TestVictimAlwaysInResidual(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 2000; trial++ {
		nseg := 1 + rng.Intn(3)
		ntxn := 2 + rng.Intn(4)
		g := &GlobalGraph{}
		for s := 0; s < nseg; s++ {
			g.Locals = append(g.Locals, LocalGraph{Segment: SegmentID(s)})
		}
		for i := 0; i < 8; i++ {
			s := rng.Intn(nseg)
			w := lockmgr.TxnID(1 + rng.Intn(ntxn))
			h := lockmgr.TxnID(1 + rng.Intn(ntxn))
			if w == h {
				continue
			}
			g.Locals[s].Edges = append(g.Locals[s].Edges, lockmgr.Edge{
				Waiter: w, Holder: h, Solid: true,
			})
		}
		residual, _ := Reduce(g)
		if len(residual) == 0 {
			continue
		}
		v := ChooseVictim(residual)
		found := false
		for _, e := range residual {
			if e.Waiter == v {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("victim %d is not a waiter in %v", v, residual)
		}
	}
}

// TestReductionIsOrderIndependent: shuffling edges and segment order must
// not change the verdict.
func TestReductionIsOrderIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 1000; trial++ {
		g := &GlobalGraph{}
		nseg := 2 + rng.Intn(2)
		for s := 0; s < nseg; s++ {
			g.Locals = append(g.Locals, LocalGraph{Segment: SegmentID(s)})
		}
		for i := 0; i < 7; i++ {
			s := rng.Intn(nseg)
			w := lockmgr.TxnID(1 + rng.Intn(4))
			h := lockmgr.TxnID(1 + rng.Intn(4))
			if w == h {
				continue
			}
			g.Locals[s].Edges = append(g.Locals[s].Edges, lockmgr.Edge{
				Waiter: w, Holder: h, Solid: rng.Intn(2) == 0,
			})
		}
		r1, _ := Reduce(g)
		// Shuffled copy.
		g2 := &GlobalGraph{Locals: make([]LocalGraph, len(g.Locals))}
		perm := rng.Perm(len(g.Locals))
		for i, p := range perm {
			src := g.Locals[p]
			edges := append([]lockmgr.Edge(nil), src.Edges...)
			rng.Shuffle(len(edges), func(a, b int) { edges[a], edges[b] = edges[b], edges[a] })
			g2.Locals[i] = LocalGraph{Segment: src.Segment, Edges: edges}
		}
		r2, _ := Reduce(g2)
		if (len(r1) > 0) != (len(r2) > 0) {
			t.Fatalf("verdict depends on order: %v vs %v", r1, r2)
		}
	}
}
