package gdd

import (
	"testing"

	"repro/internal/lockmgr"
)

// edge builds a wait-for edge.
func edge(waiter, holder uint64, solid bool) lockmgr.Edge {
	return lockmgr.Edge{Waiter: lockmgr.TxnID(waiter), Holder: lockmgr.TxnID(holder), Solid: solid}
}

// Transactions named as in the paper: A=1, B=2, C=3, D=4.
const (
	A uint64 = 1
	B uint64 = 2
	C uint64 = 3
	D uint64 = 4
)

// TestPaperFigure6 replays Global Deadlock Case 1: UPDATE across segments.
// seg0: B waits A (solid); seg1: A waits B (solid). Expect deadlock.
func TestPaperFigure6(t *testing.T) {
	g := &GlobalGraph{Locals: []LocalGraph{
		{Segment: 0, Edges: []lockmgr.Edge{edge(B, A, true)}},
		{Segment: 1, Edges: []lockmgr.Edge{edge(A, B, true)}},
	}}
	residual, involved := Reduce(g)
	if len(residual) == 0 {
		t.Fatal("Figure 6 must be detected as a deadlock")
	}
	if _, ok := involved[lockmgr.TxnID(A)]; !ok {
		t.Error("A should be in the residual graph")
	}
	if _, ok := involved[lockmgr.TxnID(B)]; !ok {
		t.Error("B should be in the residual graph")
	}
	if v := ChooseVictim(residual); v != lockmgr.TxnID(B) {
		t.Errorf("victim = %d, want youngest waiter B=%d", v, B)
	}
}

// TestPaperFigure7 replays Global Deadlock Case 2, involving the
// coordinator: coordinator: D waits C (solid, relation lock);
// seg0: C waits A (solid), B waits D (solid); seg1: A waits B (solid).
func TestPaperFigure7(t *testing.T) {
	g := &GlobalGraph{Locals: []LocalGraph{
		{Segment: CoordinatorSeg, Edges: []lockmgr.Edge{edge(D, C, true)}},
		{Segment: 0, Edges: []lockmgr.Edge{edge(C, A, true), edge(B, D, true)}},
		{Segment: 1, Edges: []lockmgr.Edge{edge(A, B, true)}},
	}}
	residual, _ := Reduce(g)
	if len(residual) == 0 {
		t.Fatal("Figure 7 must be detected as a deadlock")
	}
	// The cycle A→B→D→C→A spans all four transactions; every edge should
	// survive reduction (each vertex has positive global out-degree).
	if len(residual) != 4 {
		t.Errorf("residual edges = %d, want 4: %v", len(residual), residual)
	}
}

// TestPaperFigure8 replays the Non-deadlock Case with dotted edges:
// seg0: B waits A (solid);
// seg1: B waits C (solid), A waits B (dotted tuple lock).
// The GDD must NOT report a deadlock (paper Figure 9 walks the reduction).
func TestPaperFigure8(t *testing.T) {
	g := &GlobalGraph{Locals: []LocalGraph{
		{Segment: 0, Edges: []lockmgr.Edge{edge(B, A, true)}},
		{Segment: 1, Edges: []lockmgr.Edge{edge(B, C, true), edge(A, B, false)}},
	}}
	residual, _ := Reduce(g)
	if len(residual) != 0 {
		t.Fatalf("Figure 8 is not a deadlock; residual = %v", residual)
	}
}

// TestPaperFigure19 replays Appendix A's mixed-edge non-deadlock case:
// seg0: B waits A (solid);
// seg1: A waits B (dotted), B waits C (solid), D waits B (solid),
//
//	D waits C (solid) — the paper's graph shows D and A both blocked
//	by B/C on seg1.
//
// Expect: no deadlock (Figure 20 reduction removes everything).
func TestPaperFigure19(t *testing.T) {
	g := &GlobalGraph{Locals: []LocalGraph{
		{Segment: 0, Edges: []lockmgr.Edge{edge(B, A, true)}},
		{Segment: 1, Edges: []lockmgr.Edge{
			edge(A, B, false), // tuple lock: dotted
			edge(B, C, true),
			edge(D, B, true),
			edge(D, C, true),
		}},
	}}
	residual, _ := Reduce(g)
	if len(residual) != 0 {
		t.Fatalf("Figure 19 is not a deadlock; residual = %v", residual)
	}
}

// TestDottedEdgeNotRemovedWhenHolderBlockedLocally pins the rule that a
// dotted edge is removable only when the holder's LOCAL out-degree is zero:
// if the tuple-lock holder is itself blocked in the same segment, the edge
// stays, and a cycle through it is a real deadlock.
func TestDottedEdgeNotRemovedWhenHolderBlockedLocally(t *testing.T) {
	// seg0: A waits B (dotted), B waits A (solid) — B is blocked locally,
	// so the dotted edge cannot be removed: cycle.
	g := &GlobalGraph{Locals: []LocalGraph{
		{Segment: 0, Edges: []lockmgr.Edge{edge(A, B, false), edge(B, A, true)}},
	}}
	residual, _ := Reduce(g)
	if len(residual) == 0 {
		t.Fatal("local dotted cycle must be detected")
	}
}

// TestDottedEdgeRemovedWhenHolderBlockedElsewhere pins the complementary
// rule: a dotted edge IS removable when the holder is only blocked in a
// different segment (it can still release the tuple lock there).
func TestDottedEdgeRemovedWhenHolderBlockedElsewhere(t *testing.T) {
	// seg0: A waits B (dotted). seg1: B waits A (solid).
	// B has local out-degree 0 on seg0, so the dotted edge drops; then B's
	// solid edge drops because A is unblocked. No deadlock.
	g := &GlobalGraph{Locals: []LocalGraph{
		{Segment: 0, Edges: []lockmgr.Edge{edge(A, B, false)}},
		{Segment: 1, Edges: []lockmgr.Edge{edge(B, A, true)}},
	}}
	residual, _ := Reduce(g)
	if len(residual) != 0 {
		t.Fatalf("dotted edge to remotely-blocked holder must reduce away; residual = %v", residual)
	}
}

// TestSolidCycleAcrossThreeSegments checks a 3-party rotation deadlock.
func TestSolidCycleAcrossThreeSegments(t *testing.T) {
	g := &GlobalGraph{Locals: []LocalGraph{
		{Segment: 0, Edges: []lockmgr.Edge{edge(A, B, true)}},
		{Segment: 1, Edges: []lockmgr.Edge{edge(B, C, true)}},
		{Segment: 2, Edges: []lockmgr.Edge{edge(C, A, true)}},
	}}
	residual, involved := Reduce(g)
	if len(residual) != 3 || len(involved) != 3 {
		t.Fatalf("3-cycle: residual=%v involved=%v", residual, involved)
	}
	if v := ChooseVictim(residual); v != lockmgr.TxnID(C) {
		t.Errorf("victim = %d, want youngest C=%d", v, C)
	}
}

// TestChainWithoutCycleReduces checks that a pure waiting chain (no cycle)
// fully reduces.
func TestChainWithoutCycleReduces(t *testing.T) {
	g := &GlobalGraph{Locals: []LocalGraph{
		{Segment: 0, Edges: []lockmgr.Edge{edge(A, B, true), edge(B, C, true), edge(C, D, true)}},
	}}
	residual, _ := Reduce(g)
	if len(residual) != 0 {
		t.Fatalf("chain must reduce; residual = %v", residual)
	}
}

// TestEmptyGraph reduces to nothing.
func TestEmptyGraph(t *testing.T) {
	residual, involved := Reduce(&GlobalGraph{})
	if residual != nil || involved != nil {
		t.Fatal("empty graph must produce empty residual")
	}
}

// TestCycleHiddenBehindRemovableVertex: a vertex with zero out-degree
// anywhere must not mask an independent cycle.
func TestCycleHiddenBehindRemovableVertex(t *testing.T) {
	g := &GlobalGraph{Locals: []LocalGraph{
		{Segment: 0, Edges: []lockmgr.Edge{
			edge(A, B, true), // A waits for B, B in cycle with C
			edge(B, C, true),
		}},
		{Segment: 1, Edges: []lockmgr.Edge{edge(C, B, true)}},
	}}
	residual, involved := Reduce(g)
	if len(residual) == 0 {
		t.Fatal("B↔C cycle must survive reduction")
	}
	if _, ok := involved[lockmgr.TxnID(A)]; ok {
		// A is only waiting INTO the cycle; its edge cannot be removed
		// (B never gets out-degree zero), so A legitimately remains.
		// This is fine — the victim choice still picks a waiter in the
		// residual graph.
		t.Log("A remains as an entrant into the cycle (expected)")
	}
}
