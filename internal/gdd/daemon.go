package gdd

import (
	"sync"
	"sync/atomic"
	"time"
)

// Cluster is the view of the database the daemon needs: graph collection,
// liveness checks, and victim termination. internal/cluster implements it.
type Cluster interface {
	// CollectWaitGraphs gathers every segment's local wait-for graph,
	// including the coordinator's.
	CollectWaitGraphs() *GlobalGraph
	// TxnExists reports whether the distributed transaction is still live.
	TxnExists(txn uint64) bool
	// KillTxn terminates the distributed transaction as a deadlock victim.
	KillTxn(txn uint64)
}

// Daemon periodically runs the detection job, mirroring the GDD process
// Greenplum launches on the coordinator.
type Daemon struct {
	cluster  Cluster
	period   time.Duration
	stopOnce sync.Once
	stopCh   chan struct{}
	doneCh   chan struct{}

	runs      atomic.Int64
	deadlocks atomic.Int64
	victims   atomic.Int64
	discarded atomic.Int64 // stale graphs discarded (some txn finished)
}

// NewDaemon creates a daemon; period is the configurable detection interval
// (Greenplum's gp_global_deadlock_detector_period).
func NewDaemon(c Cluster, period time.Duration) *Daemon {
	return &Daemon{
		cluster: c,
		period:  period,
		stopCh:  make(chan struct{}),
		doneCh:  make(chan struct{}),
	}
}

// Start launches the background detection loop.
func (d *Daemon) Start() {
	go func() {
		defer close(d.doneCh)
		ticker := time.NewTicker(d.period)
		defer ticker.Stop()
		for {
			select {
			case <-d.stopCh:
				return
			case <-ticker.C:
				d.RunOnce()
			}
		}
	}()
}

// Stop halts the loop and waits for it to exit.
func (d *Daemon) Stop() {
	d.stopOnce.Do(func() { close(d.stopCh) })
	<-d.doneCh
}

// RunOnce performs one detection pass and returns the victim (0 = none).
// The pass is also callable synchronously from tests.
func (d *Daemon) RunOnce() uint64 {
	d.runs.Add(1)
	g := d.cluster.CollectWaitGraphs()
	residual, involved := Reduce(g)
	if len(residual) == 0 {
		return 0
	}
	// The collected information is asynchronous: before declaring a
	// deadlock, verify every involved transaction still exists. If any has
	// finished, simply discard this round's data and retry next period
	// (paper §4.3).
	for txn := range involved {
		if !d.cluster.TxnExists(uint64(txn)) {
			d.discarded.Add(1)
			return 0
		}
	}
	// Re-collect under the assumption the graph is current; if the residual
	// persists, it is a true deadlock (no transaction in a cycle can
	// progress, so the edges cannot disappear).
	g2 := d.cluster.CollectWaitGraphs()
	residual2, _ := Reduce(g2)
	if len(residual2) == 0 {
		d.discarded.Add(1)
		return 0
	}
	d.deadlocks.Add(1)
	victim := ChooseVictim(residual2)
	if victim == 0 {
		return 0
	}
	d.victims.Add(1)
	d.cluster.KillTxn(uint64(victim))
	return uint64(victim)
}

// Stats returns daemon counters: passes run, deadlocks found, victims
// killed, and stale rounds discarded.
func (d *Daemon) Stats() (runs, deadlocks, victims, discarded int64) {
	return d.runs.Load(), d.deadlocks.Load(), d.victims.Load(), d.discarded.Load()
}
