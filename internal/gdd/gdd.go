// Package gdd implements Greenplum's Global Deadlock Detector (paper §4.3,
// Algorithm 1): a coordinator-side daemon that periodically gathers each
// segment's local wait-for graph, runs the greedy edge-reduction algorithm,
// and — when a residual graph remains and all of its transactions still
// exist — breaks the deadlock by terminating the youngest transaction.
package gdd

import (
	"sort"

	"repro/internal/lockmgr"
)

// SegmentID identifies a segment; the coordinator is segment -1, matching
// the paper's notation (deg_{-1}).
type SegmentID int

// CoordinatorSeg is the coordinator's segment id.
const CoordinatorSeg SegmentID = -1

// LocalGraph is one segment's wait-for edges.
type LocalGraph struct {
	Segment SegmentID
	Edges   []lockmgr.Edge
}

// GlobalGraph is the union of local graphs the detector analyzes.
type GlobalGraph struct {
	Locals []LocalGraph
}

// Vertices returns the set of transactions appearing in the graph.
func (g *GlobalGraph) Vertices() map[lockmgr.TxnID]struct{} {
	vs := make(map[lockmgr.TxnID]struct{})
	for _, lg := range g.Locals {
		for _, e := range lg.Edges {
			vs[e.Waiter] = struct{}{}
			vs[e.Holder] = struct{}{}
		}
	}
	return vs
}

// edgeSet is a mutable copy of the graph during reduction: edges[seg] is the
// slice of remaining edges in that segment's local graph.
type edgeSet struct {
	segs  []SegmentID
	edges map[SegmentID][]lockmgr.Edge
}

func newEdgeSet(g *GlobalGraph) *edgeSet {
	es := &edgeSet{edges: make(map[SegmentID][]lockmgr.Edge)}
	for _, lg := range g.Locals {
		es.segs = append(es.segs, lg.Segment)
		es.edges[lg.Segment] = append([]lockmgr.Edge(nil), lg.Edges...)
	}
	sort.Slice(es.segs, func(i, j int) bool { return es.segs[i] < es.segs[j] })
	return es
}

func (es *edgeSet) globalOutDegree() map[lockmgr.TxnID]int {
	deg := make(map[lockmgr.TxnID]int)
	for _, seg := range es.segs {
		for _, e := range es.edges[seg] {
			deg[e.Waiter]++
			if _, ok := deg[e.Holder]; !ok {
				deg[e.Holder] = 0
			}
		}
	}
	return deg
}

func (es *edgeSet) localOutDegree(seg SegmentID) map[lockmgr.TxnID]int {
	deg := make(map[lockmgr.TxnID]int)
	for _, e := range es.edges[seg] {
		deg[e.Waiter]++
		if _, ok := deg[e.Holder]; !ok {
			deg[e.Holder] = 0
		}
	}
	return deg
}

func (es *edgeSet) empty() bool {
	for _, seg := range es.segs {
		if len(es.edges[seg]) > 0 {
			return false
		}
	}
	return true
}

func (es *edgeSet) remaining() []lockmgr.Edge {
	var out []lockmgr.Edge
	for _, seg := range es.segs {
		out = append(out, es.edges[seg]...)
	}
	return out
}

// Reduce runs Algorithm 1's greedy edge elimination and returns the residual
// edges (empty means no deadlock) plus the set of transactions involved in
// the residual graph.
//
// The two greedy rules, verbatim from the paper:
//
//  1. A vertex with zero *global* out-degree is not blocked anywhere, so it
//     will eventually finish and release everything: remove all edges
//     pointing to it (solid and dotted alike).
//  2. A vertex with zero *local* out-degree in some segment is not blocked in
//     that segment, so it will eventually release the locks it can release
//     without ending the transaction: remove all *dotted* edges pointing to
//     it in that segment.
func Reduce(g *GlobalGraph) (residual []lockmgr.Edge, involved map[lockmgr.TxnID]struct{}) {
	es := newEdgeSet(g)
	for {
		removed := false

		// Rule 1: drop all edges into vertices with zero global out-degree.
		gdeg := es.globalOutDegree()
		for _, seg := range es.segs {
			kept := es.edges[seg][:0]
			for _, e := range es.edges[seg] {
				if gdeg[e.Holder] == 0 {
					removed = true
					continue
				}
				kept = append(kept, e)
			}
			es.edges[seg] = kept
		}

		// Rule 2: drop dotted edges into vertices with zero local out-degree.
		for _, seg := range es.segs {
			ldeg := es.localOutDegree(seg)
			kept := es.edges[seg][:0]
			for _, e := range es.edges[seg] {
				if !e.Solid && ldeg[e.Holder] == 0 {
					removed = true
					continue
				}
				kept = append(kept, e)
			}
			es.edges[seg] = kept
		}

		if !removed {
			break
		}
	}
	if es.empty() {
		return nil, nil
	}
	residual = es.remaining()
	involved = make(map[lockmgr.TxnID]struct{})
	for _, e := range residual {
		involved[e.Waiter] = struct{}{}
		involved[e.Holder] = struct{}{}
	}
	return residual, involved
}

// ChooseVictim implements the paper's default policy: terminate the youngest
// transaction, i.e. the one with the largest (most recently assigned,
// monotonically increasing) distributed transaction id. Only transactions
// that appear as waiters in the residual graph are candidates — killing a
// pure holder would not unblock it if it is not itself waiting.
func ChooseVictim(residual []lockmgr.Edge) lockmgr.TxnID {
	var victim lockmgr.TxnID
	for _, e := range residual {
		if e.Waiter > victim {
			victim = e.Waiter
		}
	}
	return victim
}
