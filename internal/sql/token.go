// Package sql implements the SQL front end: a hand-written lexer and
// recursive-descent parser producing the AST consumed by the planner.
//
// The dialect is the subset of Greenplum SQL the paper exercises: DDL with
// distribution and range partitioning, DML, transaction control, LOCK TABLE,
// resource-group and role administration, and EXPLAIN.
package sql

import "fmt"

// TokenKind classifies lexical tokens.
type TokenKind uint8

const (
	// TokEOF terminates the token stream.
	TokEOF TokenKind = iota
	// TokIdent is an identifier or unreserved keyword.
	TokIdent
	// TokKeyword is a reserved word (normalized upper-case in Val).
	TokKeyword
	// TokInt is an integer literal.
	TokInt
	// TokFloat is a floating-point literal.
	TokFloat
	// TokString is a single-quoted string literal (Val holds the unquoted text).
	TokString
	// TokOp is an operator or punctuation symbol.
	TokOp
	// TokParam is a positional parameter like $1.
	TokParam
)

// Token is one lexical unit with its source position (1-based).
type Token struct {
	Kind TokenKind
	Val  string
	Pos  int // byte offset in the input
	Line int
	Col  int
}

func (t Token) String() string {
	switch t.Kind {
	case TokEOF:
		return "<eof>"
	case TokString:
		return fmt.Sprintf("'%s'", t.Val)
	default:
		return t.Val
	}
}

// keywords are the reserved words of the dialect. Everything else lexes as an
// identifier; the parser matches unreserved keywords contextually by text.
var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "INSERT": true, "INTO": true,
	"VALUES": true, "UPDATE": true, "SET": true, "DELETE": true, "CREATE": true,
	"TABLE": true, "DROP": true, "ALTER": true, "AND": true, "OR": true,
	"NOT": true, "NULL": true, "TRUE": true, "FALSE": true, "AS": true,
	"JOIN": true, "INNER": true, "LEFT": true, "RIGHT": true, "OUTER": true,
	"ON": true, "USING": true, "GROUP": true, "BY": true, "ORDER": true,
	"ASC": true, "DESC": true, "LIMIT": true, "OFFSET": true, "HAVING": true,
	"DISTINCT": true, "BEGIN": true, "COMMIT": true, "ROLLBACK": true,
	"ABORT": true, "LOCK": true, "IN": true, "IS": true, "BETWEEN": true,
	"LIKE": true, "CASE": true, "WHEN": true, "THEN": true, "ELSE": true,
	"END": true, "EXPLAIN": true, "INDEX": true, "PRIMARY": true, "KEY": true,
	"DISTRIBUTED": true, "RANDOMLY": true, "REPLICATED": true, "PARTITION": true,
	"RANGE": true, "LIST": true, "RESOURCE": true, "ROLE": true,
	"VACUUM": true, "TRUNCATE": true, "FOR": true, "SHARE": true,
	"COUNT": true, "SUM": true, "AVG": true, "MIN": true, "MAX": true,
	"DEFAULT": true, "CROSS": true, "UNION": true, "ALL": true, "EXISTS": true,
}
