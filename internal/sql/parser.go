package sql

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/types"
)

// Parser turns SQL text into statements.
type Parser struct {
	lex  *Lexer
	tok  Token // current token
	peek *Token
}

// ParseError reports a syntax error with position information.
type ParseError struct {
	Msg  string
	Line int
	Col  int
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("sql: parse error at %d:%d: %s", e.Line, e.Col, e.Msg)
}

// Parse parses a single statement (a trailing semicolon is allowed).
func Parse(src string) (Statement, error) {
	stmts, err := ParseAll(src)
	if err != nil {
		return nil, err
	}
	if len(stmts) != 1 {
		return nil, fmt.Errorf("sql: expected exactly one statement, got %d", len(stmts))
	}
	return stmts[0], nil
}

// ParseAll parses a semicolon-separated script.
func ParseAll(src string) ([]Statement, error) {
	p := &Parser{lex: NewLexer(src)}
	if err := p.next(); err != nil {
		return nil, err
	}
	var stmts []Statement
	for {
		for p.isOp(";") {
			if err := p.next(); err != nil {
				return nil, err
			}
		}
		if p.tok.Kind == TokEOF {
			return stmts, nil
		}
		s, err := p.parseStatement()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, s)
		if p.tok.Kind != TokEOF && !p.isOp(";") {
			return nil, p.errf("expected ';' or end of input, found %s", p.tok)
		}
	}
}

func (p *Parser) errf(format string, args ...any) error {
	return &ParseError{Msg: fmt.Sprintf(format, args...), Line: p.tok.Line, Col: p.tok.Col}
}

func (p *Parser) next() error {
	if p.peek != nil {
		p.tok = *p.peek
		p.peek = nil
		return nil
	}
	t, err := p.lex.Next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *Parser) peekTok() (Token, error) {
	if p.peek == nil {
		t, err := p.lex.Next()
		if err != nil {
			return Token{}, err
		}
		p.peek = &t
	}
	return *p.peek, nil
}

func (p *Parser) isKw(kw string) bool {
	return p.tok.Kind == TokKeyword && p.tok.Val == kw
}

// isWord matches a keyword or an unreserved identifier, case-insensitively.
func (p *Parser) isWord(w string) bool {
	if p.tok.Kind == TokKeyword {
		return p.tok.Val == strings.ToUpper(w)
	}
	return p.tok.Kind == TokIdent && strings.EqualFold(p.tok.Val, w)
}

func (p *Parser) isOp(op string) bool {
	return p.tok.Kind == TokOp && p.tok.Val == op
}

func (p *Parser) expectKw(kw string) error {
	if !p.isKw(kw) {
		return p.errf("expected %s, found %s", kw, p.tok)
	}
	return p.next()
}

func (p *Parser) expectWord(w string) error {
	if !p.isWord(w) {
		return p.errf("expected %s, found %s", strings.ToUpper(w), p.tok)
	}
	return p.next()
}

func (p *Parser) expectOp(op string) error {
	if !p.isOp(op) {
		return p.errf("expected %q, found %s", op, p.tok)
	}
	return p.next()
}

func (p *Parser) expectIdent() (string, error) {
	if p.tok.Kind != TokIdent {
		// Allow a handful of keywords in identifier position (column names
		// like "count" are common in workloads).
		if p.tok.Kind == TokKeyword {
			v := strings.ToLower(p.tok.Val)
			if err := p.next(); err != nil {
				return "", err
			}
			return v, nil
		}
		return "", p.errf("expected identifier, found %s", p.tok)
	}
	v := p.tok.Val
	if err := p.next(); err != nil {
		return "", err
	}
	return v, nil
}

// parseStatement dispatches on the leading keyword.
func (p *Parser) parseStatement() (Statement, error) {
	switch {
	case p.isKw("SELECT"):
		return p.parseSelect()
	case p.isKw("INSERT"):
		return p.parseInsert()
	case p.isKw("UPDATE"):
		return p.parseUpdate()
	case p.isKw("DELETE"):
		return p.parseDelete()
	case p.isKw("CREATE"):
		return p.parseCreate()
	case p.isKw("DROP"):
		return p.parseDrop()
	case p.isKw("ALTER"):
		return p.parseAlter()
	case p.isKw("BEGIN") || p.isWord("START"):
		if err := p.next(); err != nil {
			return nil, err
		}
		// Optional TRANSACTION / WORK noise words.
		for p.isWord("TRANSACTION") || p.isWord("WORK") {
			if err := p.next(); err != nil {
				return nil, err
			}
		}
		return &BeginStmt{}, nil
	case p.isKw("COMMIT"):
		if err := p.next(); err != nil {
			return nil, err
		}
		return &CommitStmt{}, nil
	case p.isKw("ROLLBACK") || p.isKw("ABORT"):
		if err := p.next(); err != nil {
			return nil, err
		}
		return &RollbackStmt{}, nil
	case p.isKw("LOCK"):
		return p.parseLock()
	case p.isKw("VACUUM"):
		return p.parseVacuum()
	case p.isWord("ANALYZE"): // unreserved: matches the bare identifier
		if err := p.next(); err != nil {
			return nil, err
		}
		st := &AnalyzeStmt{}
		if p.tok.Kind == TokIdent {
			st.Table = p.tok.Val
			if err := p.next(); err != nil {
				return nil, err
			}
		}
		return st, nil
	case p.isKw("TRUNCATE"):
		if err := p.next(); err != nil {
			return nil, err
		}
		if p.isKw("TABLE") {
			if err := p.next(); err != nil {
				return nil, err
			}
		}
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		return &TruncateStmt{Name: name}, nil
	case p.isKw("EXPLAIN"):
		if err := p.next(); err != nil {
			return nil, err
		}
		analyze := false
		if p.isWord("ANALYZE") {
			analyze = true
			if err := p.next(); err != nil {
				return nil, err
			}
		}
		inner, err := p.parseStatement()
		if err != nil {
			return nil, err
		}
		return &ExplainStmt{Target: inner, Analyze: analyze}, nil
	case p.isWord("FAULT"): // unreserved: matches the bare identifier
		return p.parseFault()
	case p.isWord("SHOW"): // unreserved: matches the bare identifier
		if err := p.next(); err != nil {
			return nil, err
		}
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		return &ShowStmt{Name: name}, nil
	case p.isKw("SET"):
		if err := p.next(); err != nil {
			return nil, err
		}
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if p.isOp("=") || p.isWord("TO") {
			if err := p.next(); err != nil {
				return nil, err
			}
		}
		val := p.tok.Val
		if err := p.next(); err != nil {
			return nil, err
		}
		// Negative values (SET log_min_duration -1) lex as two tokens.
		if val == "-" {
			val += p.tok.Val
			if err := p.next(); err != nil {
				return nil, err
			}
		}
		return &SetStmt{Name: name, Value: val}, nil
	default:
		return nil, p.errf("unexpected token %s at statement start", p.tok)
	}
}

// ---------- SELECT ----------

func (p *Parser) parseSelect() (*SelectStmt, error) {
	if err := p.expectKw("SELECT"); err != nil {
		return nil, err
	}
	s := &SelectStmt{}
	if p.isKw("DISTINCT") {
		s.Distinct = true
		if err := p.next(); err != nil {
			return nil, err
		}
	}
	for {
		if p.isOp("*") {
			s.Items = append(s.Items, SelectItem{Star: true})
			if err := p.next(); err != nil {
				return nil, err
			}
		} else {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := SelectItem{Expr: e}
			if p.isKw("AS") {
				if err := p.next(); err != nil {
					return nil, err
				}
				a, err := p.expectIdent()
				if err != nil {
					return nil, err
				}
				item.Alias = a
			} else if p.tok.Kind == TokIdent {
				item.Alias = p.tok.Val
				if err := p.next(); err != nil {
					return nil, err
				}
			}
			s.Items = append(s.Items, item)
		}
		if !p.isOp(",") {
			break
		}
		if err := p.next(); err != nil {
			return nil, err
		}
	}
	if p.isKw("FROM") {
		if err := p.next(); err != nil {
			return nil, err
		}
		from, err := p.parseTableRef()
		if err != nil {
			return nil, err
		}
		s.From = from
	}
	if p.isKw("WHERE") {
		if err := p.next(); err != nil {
			return nil, err
		}
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		s.Where = w
	}
	if p.isKw("GROUP") {
		if err := p.next(); err != nil {
			return nil, err
		}
		if err := p.expectKw("BY"); err != nil {
			return nil, err
		}
		for {
			g, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			s.GroupBy = append(s.GroupBy, g)
			if !p.isOp(",") {
				break
			}
			if err := p.next(); err != nil {
				return nil, err
			}
		}
	}
	if p.isKw("HAVING") {
		if err := p.next(); err != nil {
			return nil, err
		}
		h, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		s.Having = h
	}
	if p.isKw("ORDER") {
		if err := p.next(); err != nil {
			return nil, err
		}
		if err := p.expectKw("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.isKw("DESC") {
				item.Desc = true
				if err := p.next(); err != nil {
					return nil, err
				}
			} else if p.isKw("ASC") {
				if err := p.next(); err != nil {
					return nil, err
				}
			}
			s.OrderBy = append(s.OrderBy, item)
			if !p.isOp(",") {
				break
			}
			if err := p.next(); err != nil {
				return nil, err
			}
		}
	}
	if p.isKw("LIMIT") {
		if err := p.next(); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		s.Limit = e
	}
	if p.isKw("OFFSET") {
		if err := p.next(); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		s.Offset = e
	}
	if p.isKw("FOR") {
		if err := p.next(); err != nil {
			return nil, err
		}
		switch {
		case p.isKw("UPDATE"):
			s.Lock = LockForUpdate
		case p.isKw("SHARE"):
			s.Lock = LockForShare
		default:
			return nil, p.errf("expected UPDATE or SHARE after FOR")
		}
		if err := p.next(); err != nil {
			return nil, err
		}
	}
	return s, nil
}

func (p *Parser) parseTableRef() (TableRef, error) {
	left, err := p.parsePrimaryTableRef()
	if err != nil {
		return nil, err
	}
	for {
		var jt JoinType
		switch {
		case p.isKw("JOIN") || p.isKw("INNER"):
			jt = JoinInner
			if p.isKw("INNER") {
				if err := p.next(); err != nil {
					return nil, err
				}
			}
		case p.isKw("LEFT"):
			jt = JoinLeft
			if err := p.next(); err != nil {
				return nil, err
			}
			if p.isKw("OUTER") {
				if err := p.next(); err != nil {
					return nil, err
				}
			}
		case p.isKw("CROSS"):
			jt = JoinCross
			if err := p.next(); err != nil {
				return nil, err
			}
		case p.isOp(","):
			// Comma join = cross join; the WHERE clause supplies predicates.
			if err := p.next(); err != nil {
				return nil, err
			}
			right, err := p.parsePrimaryTableRef()
			if err != nil {
				return nil, err
			}
			left = &JoinRef{Type: JoinCross, Left: left, Right: right}
			continue
		default:
			return left, nil
		}
		if err := p.expectKw("JOIN"); err != nil {
			return nil, err
		}
		right, err := p.parsePrimaryTableRef()
		if err != nil {
			return nil, err
		}
		j := &JoinRef{Type: jt, Left: left, Right: right}
		switch {
		case p.isKw("ON"):
			if err := p.next(); err != nil {
				return nil, err
			}
			cond, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			j.On = cond
		case p.isKw("USING"):
			if err := p.next(); err != nil {
				return nil, err
			}
			if err := p.expectOp("("); err != nil {
				return nil, err
			}
			for {
				c, err := p.expectIdent()
				if err != nil {
					return nil, err
				}
				j.Using = append(j.Using, c)
				if !p.isOp(",") {
					break
				}
				if err := p.next(); err != nil {
					return nil, err
				}
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
		default:
			if jt != JoinCross {
				return nil, p.errf("expected ON or USING after JOIN")
			}
		}
		left = j
	}
}

func (p *Parser) parsePrimaryTableRef() (TableRef, error) {
	if p.isOp("(") {
		if err := p.next(); err != nil {
			return nil, err
		}
		if p.isKw("SELECT") {
			sub, err := p.parseSelect()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			alias := ""
			if p.isKw("AS") {
				if err := p.next(); err != nil {
					return nil, err
				}
			}
			if p.tok.Kind == TokIdent {
				alias = p.tok.Val
				if err := p.next(); err != nil {
					return nil, err
				}
			}
			return &SubqueryRef{Select: sub, Alias: alias}, nil
		}
		ref, err := p.parseTableRef()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return ref, nil
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	t := &BaseTable{Name: name}
	if p.isKw("AS") {
		if err := p.next(); err != nil {
			return nil, err
		}
		a, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		t.Alias = a
	} else if p.tok.Kind == TokIdent {
		t.Alias = p.tok.Val
		if err := p.next(); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// ---------- INSERT / UPDATE / DELETE ----------

func (p *Parser) parseInsert() (Statement, error) {
	if err := p.expectKw("INSERT"); err != nil {
		return nil, err
	}
	if err := p.expectKw("INTO"); err != nil {
		return nil, err
	}
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	ins := &InsertStmt{Table: table}
	if p.isOp("(") {
		if err := p.next(); err != nil {
			return nil, err
		}
		for {
			c, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			ins.Columns = append(ins.Columns, c)
			if !p.isOp(",") {
				break
			}
			if err := p.next(); err != nil {
				return nil, err
			}
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
	}
	switch {
	case p.isKw("VALUES"):
		if err := p.next(); err != nil {
			return nil, err
		}
		for {
			if err := p.expectOp("("); err != nil {
				return nil, err
			}
			var row []Expr
			for {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				row = append(row, e)
				if !p.isOp(",") {
					break
				}
				if err := p.next(); err != nil {
					return nil, err
				}
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			ins.Rows = append(ins.Rows, row)
			if !p.isOp(",") {
				break
			}
			if err := p.next(); err != nil {
				return nil, err
			}
		}
	case p.isKw("SELECT"):
		sel, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		ins.Select = sel
	default:
		return nil, p.errf("expected VALUES or SELECT in INSERT")
	}
	return ins, nil
}

func (p *Parser) parseUpdate() (Statement, error) {
	if err := p.expectKw("UPDATE"); err != nil {
		return nil, err
	}
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("SET"); err != nil {
		return nil, err
	}
	u := &UpdateStmt{Table: table}
	for {
		col, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp("="); err != nil {
			return nil, err
		}
		val, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		u.Set = append(u.Set, Assignment{Column: col, Value: val})
		if !p.isOp(",") {
			break
		}
		if err := p.next(); err != nil {
			return nil, err
		}
	}
	if p.isKw("WHERE") {
		if err := p.next(); err != nil {
			return nil, err
		}
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		u.Where = w
	}
	return u, nil
}

func (p *Parser) parseDelete() (Statement, error) {
	if err := p.expectKw("DELETE"); err != nil {
		return nil, err
	}
	if err := p.expectKw("FROM"); err != nil {
		return nil, err
	}
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	d := &DeleteStmt{Table: table}
	if p.isKw("WHERE") {
		if err := p.next(); err != nil {
			return nil, err
		}
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		d.Where = w
	}
	return d, nil
}

// ---------- CREATE / DROP / ALTER ----------

func (p *Parser) parseCreate() (Statement, error) {
	if err := p.expectKw("CREATE"); err != nil {
		return nil, err
	}
	switch {
	case p.isKw("TABLE"):
		return p.parseCreateTable()
	case p.isKw("INDEX"):
		return p.parseCreateIndex()
	case p.isKw("RESOURCE"):
		if err := p.next(); err != nil {
			return nil, err
		}
		if err := p.expectKw("GROUP"); err != nil {
			return nil, err
		}
		return p.parseResourceGroupBody()
	case p.isKw("ROLE"):
		if err := p.next(); err != nil {
			return nil, err
		}
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		st := &CreateRoleStmt{Name: name}
		if p.isKw("RESOURCE") {
			if err := p.next(); err != nil {
				return nil, err
			}
			if err := p.expectKw("GROUP"); err != nil {
				return nil, err
			}
			g, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			st.ResourceGroup = g
		}
		return st, nil
	default:
		return nil, p.errf("unsupported CREATE target %s", p.tok)
	}
}

func (p *Parser) parseCreateIndex() (Statement, error) {
	if err := p.expectKw("INDEX"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("ON"); err != nil {
		return nil, err
	}
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	st := &CreateIndexStmt{Name: name, Table: table}
	for {
		c, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		st.Columns = append(st.Columns, c)
		if !p.isOp(",") {
			break
		}
		if err := p.next(); err != nil {
			return nil, err
		}
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	return st, nil
}

func (p *Parser) parseResourceGroupBody() (Statement, error) {
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	st := &CreateResourceGroupStmt{Name: name}
	if err := p.expectWord("WITH"); err != nil {
		return nil, err
	}
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	for {
		opt, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp("="); err != nil {
			return nil, err
		}
		var val string
		switch p.tok.Kind {
		case TokInt, TokFloat, TokIdent, TokString:
			val = p.tok.Val
		default:
			return nil, p.errf("expected option value, found %s", p.tok)
		}
		if err := p.next(); err != nil {
			return nil, err
		}
		// CPUSET=0-3 lexes as int '0' op '-' int '3'; reassemble ranges.
		for p.isOp("-") {
			if err := p.next(); err != nil {
				return nil, err
			}
			val += "-" + p.tok.Val
			if err := p.next(); err != nil {
				return nil, err
			}
		}
		st.Options = append(st.Options, ResourceGroupOption{
			Name: strings.ToUpper(opt), Value: val,
		})
		if !p.isOp(",") {
			break
		}
		if err := p.next(); err != nil {
			return nil, err
		}
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	return st, nil
}

func kindFromTypeName(name string) (types.Kind, bool) {
	switch strings.ToLower(name) {
	case "int", "integer", "bigint", "smallint", "serial", "int4", "int8":
		return types.KindInt, true
	case "float", "float8", "double", "real", "numeric", "decimal":
		return types.KindFloat, true
	case "text", "varchar", "char", "character", "string":
		return types.KindText, true
	case "bool", "boolean":
		return types.KindBool, true
	case "date", "timestamp":
		return types.KindDate, true
	default:
		return 0, false
	}
}

func (p *Parser) parseTypeName() (types.Kind, error) {
	name, err := p.expectIdent()
	if err != nil {
		return 0, err
	}
	k, ok := kindFromTypeName(name)
	if !ok {
		return 0, p.errf("unknown type %q", name)
	}
	// Optional (n) or (p, s) suffix, and "double precision"/"character varying".
	if strings.EqualFold(name, "double") && p.isWord("precision") {
		if err := p.next(); err != nil {
			return 0, err
		}
	}
	if strings.EqualFold(name, "character") && p.isWord("varying") {
		if err := p.next(); err != nil {
			return 0, err
		}
	}
	if p.isOp("(") {
		for !p.isOp(")") {
			if err := p.next(); err != nil {
				return 0, err
			}
		}
		if err := p.next(); err != nil {
			return 0, err
		}
	}
	return k, nil
}

func (p *Parser) parseCreateTable() (Statement, error) {
	if err := p.expectKw("TABLE"); err != nil {
		return nil, err
	}
	st := &CreateTableStmt{Storage: StorageHeap}
	if p.isWord("IF") {
		if err := p.next(); err != nil {
			return nil, err
		}
		if err := p.expectKw("NOT"); err != nil {
			return nil, err
		}
		if err := p.expectWord("EXISTS"); err != nil {
			return nil, err
		}
		st.IfNotExists = true
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	st.Name = name
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	for {
		col, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		kind, err := p.parseTypeName()
		if err != nil {
			return nil, err
		}
		// Swallow column constraints we accept but don't enforce.
		for p.isKw("PRIMARY") || p.isKw("NOT") || p.isKw("DEFAULT") || p.isWord("UNIQUE") {
			switch {
			case p.isKw("PRIMARY"):
				if err := p.next(); err != nil {
					return nil, err
				}
				if err := p.expectKw("KEY"); err != nil {
					return nil, err
				}
			case p.isKw("NOT"):
				if err := p.next(); err != nil {
					return nil, err
				}
				if err := p.expectKw("NULL"); err != nil {
					return nil, err
				}
			case p.isKw("DEFAULT"):
				if err := p.next(); err != nil {
					return nil, err
				}
				if _, err := p.parseExpr(); err != nil {
					return nil, err
				}
			default:
				if err := p.next(); err != nil {
					return nil, err
				}
			}
		}
		st.Columns = append(st.Columns, ColumnDef{Name: col, Kind: kind})
		if !p.isOp(",") {
			break
		}
		if err := p.next(); err != nil {
			return nil, err
		}
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	// Trailing clauses in any order: WITH (storage), DISTRIBUTED ..., PARTITION BY ...
	for {
		switch {
		case p.isWord("WITH"):
			if err := p.next(); err != nil {
				return nil, err
			}
			if err := p.expectOp("("); err != nil {
				return nil, err
			}
			for {
				opt, err := p.expectIdent()
				if err != nil {
					return nil, err
				}
				val := ""
				if p.isOp("=") {
					if err := p.next(); err != nil {
						return nil, err
					}
					val = p.tok.Val
					if err := p.next(); err != nil {
						return nil, err
					}
				}
				if strings.EqualFold(opt, "appendonly") || strings.EqualFold(opt, "appendoptimized") {
					if strings.EqualFold(val, "true") {
						st.Storage = StorageAORow
					}
				}
				if strings.EqualFold(opt, "orientation") && strings.EqualFold(val, "column") {
					st.Storage = StorageAOColumn
				}
				if !p.isOp(",") {
					break
				}
				if err := p.next(); err != nil {
					return nil, err
				}
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
		case p.isKw("DISTRIBUTED"):
			if err := p.next(); err != nil {
				return nil, err
			}
			switch {
			case p.isKw("BY"):
				if err := p.next(); err != nil {
					return nil, err
				}
				if err := p.expectOp("("); err != nil {
					return nil, err
				}
				for {
					c, err := p.expectIdent()
					if err != nil {
						return nil, err
					}
					st.DistKeys = append(st.DistKeys, c)
					if !p.isOp(",") {
						break
					}
					if err := p.next(); err != nil {
						return nil, err
					}
				}
				if err := p.expectOp(")"); err != nil {
					return nil, err
				}
				st.Distribution = DistributeHash
			case p.isKw("RANDOMLY"):
				if err := p.next(); err != nil {
					return nil, err
				}
				st.Distribution = DistributeRandomly
			case p.isKw("REPLICATED"):
				if err := p.next(); err != nil {
					return nil, err
				}
				st.Distribution = DistributeReplicated
			default:
				return nil, p.errf("expected BY, RANDOMLY or REPLICATED after DISTRIBUTED")
			}
		case p.isKw("PARTITION"):
			if err := p.next(); err != nil {
				return nil, err
			}
			if err := p.expectKw("BY"); err != nil {
				return nil, err
			}
			if err := p.expectKw("RANGE"); err != nil {
				return nil, err
			}
			if err := p.expectOp("("); err != nil {
				return nil, err
			}
			col, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			st.PartitionBy = col
			if err := p.expectOp("("); err != nil {
				return nil, err
			}
			for {
				pd, err := p.parsePartitionDef(st.Storage)
				if err != nil {
					return nil, err
				}
				st.Partitions = append(st.Partitions, pd)
				if !p.isOp(",") {
					break
				}
				if err := p.next(); err != nil {
					return nil, err
				}
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
		default:
			return st, nil
		}
	}
}

// parsePartitionDef parses:
//
//	PARTITION name START (lit) END (lit) [WITH (appendonly=..., orientation=...)]
func (p *Parser) parsePartitionDef(defaultStorage StorageKind) (PartitionDef, error) {
	var pd PartitionDef
	pd.Storage = defaultStorage
	if err := p.expectKw("PARTITION"); err != nil {
		return pd, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return pd, err
	}
	pd.Name = name
	if err := p.expectWord("START"); err != nil {
		return pd, err
	}
	if err := p.expectOp("("); err != nil {
		return pd, err
	}
	lo, err := p.parseLiteralValue()
	if err != nil {
		return pd, err
	}
	pd.Start = lo
	if err := p.expectOp(")"); err != nil {
		return pd, err
	}
	if err := p.expectKw("END"); err != nil {
		return pd, err
	}
	if err := p.expectOp("("); err != nil {
		return pd, err
	}
	hi, err := p.parseLiteralValue()
	if err != nil {
		return pd, err
	}
	pd.End = hi
	if err := p.expectOp(")"); err != nil {
		return pd, err
	}
	if p.isWord("WITH") {
		if err := p.next(); err != nil {
			return pd, err
		}
		if err := p.expectOp("("); err != nil {
			return pd, err
		}
		for {
			opt, err := p.expectIdent()
			if err != nil {
				return pd, err
			}
			val := ""
			if p.isOp("=") {
				if err := p.next(); err != nil {
					return pd, err
				}
				val = p.tok.Val
				if err := p.next(); err != nil {
					return pd, err
				}
			}
			if strings.EqualFold(opt, "appendonly") && strings.EqualFold(val, "true") {
				if pd.Storage == StorageHeap {
					pd.Storage = StorageAORow
				}
			}
			if strings.EqualFold(opt, "orientation") && strings.EqualFold(val, "column") {
				pd.Storage = StorageAOColumn
			}
			if !p.isOp(",") {
				break
			}
			if err := p.next(); err != nil {
				return pd, err
			}
		}
		if err := p.expectOp(")"); err != nil {
			return pd, err
		}
	}
	return pd, nil
}

func (p *Parser) parseLiteralValue() (types.Datum, error) {
	neg := false
	if p.isOp("-") {
		neg = true
		if err := p.next(); err != nil {
			return types.Null, err
		}
	}
	switch p.tok.Kind {
	case TokInt:
		v, err := strconv.ParseInt(p.tok.Val, 10, 64)
		if err != nil {
			return types.Null, p.errf("bad integer %q", p.tok.Val)
		}
		if neg {
			v = -v
		}
		if err := p.next(); err != nil {
			return types.Null, err
		}
		return types.NewInt(v), nil
	case TokFloat:
		v, err := strconv.ParseFloat(p.tok.Val, 64)
		if err != nil {
			return types.Null, p.errf("bad float %q", p.tok.Val)
		}
		if neg {
			v = -v
		}
		if err := p.next(); err != nil {
			return types.Null, err
		}
		return types.NewFloat(v), nil
	case TokString:
		s := p.tok.Val
		if err := p.next(); err != nil {
			return types.Null, err
		}
		// Dates in partition bounds are common: try date first.
		if d, err := types.NewText(s).CastTo(types.KindDate); err == nil && len(s) == 10 {
			return d, nil
		}
		return types.NewText(s), nil
	default:
		return types.Null, p.errf("expected literal, found %s", p.tok)
	}
}

func (p *Parser) parseDrop() (Statement, error) {
	if err := p.expectKw("DROP"); err != nil {
		return nil, err
	}
	switch {
	case p.isKw("TABLE"):
		if err := p.next(); err != nil {
			return nil, err
		}
		st := &DropTableStmt{}
		if p.isWord("IF") {
			if err := p.next(); err != nil {
				return nil, err
			}
			if err := p.expectWord("EXISTS"); err != nil {
				return nil, err
			}
			st.IfExists = true
		}
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		st.Name = name
		return st, nil
	case p.isKw("RESOURCE"):
		if err := p.next(); err != nil {
			return nil, err
		}
		if err := p.expectKw("GROUP"); err != nil {
			return nil, err
		}
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		return &DropResourceGroupStmt{Name: name}, nil
	default:
		return nil, p.errf("unsupported DROP target %s", p.tok)
	}
}

func (p *Parser) parseAlter() (Statement, error) {
	if err := p.expectKw("ALTER"); err != nil {
		return nil, err
	}
	if p.isWord("SYSTEM") {
		if err := p.next(); err != nil {
			return nil, err
		}
		if err := p.expectWord("EXPAND"); err != nil {
			return nil, err
		}
		if !p.isWord("TO") && !p.isKw("TO") {
			return nil, p.errf("expected TO after ALTER SYSTEM EXPAND, found %s", p.tok)
		}
		n, err := p.parseFaultInt("EXPAND TO")
		if err != nil {
			return nil, err
		}
		if n <= 0 {
			return nil, p.errf("ALTER SYSTEM EXPAND TO needs a positive segment count")
		}
		return &AlterSystemExpandStmt{Target: n}, nil
	}
	if !p.isKw("ROLE") {
		return nil, p.errf("only ALTER ROLE and ALTER SYSTEM EXPAND are supported")
	}
	if err := p.next(); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("RESOURCE"); err != nil {
		return nil, err
	}
	if err := p.expectKw("GROUP"); err != nil {
		return nil, err
	}
	g, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	return &AlterRoleStmt{Name: name, ResourceGroup: g}, nil
}

func (p *Parser) parseLock() (Statement, error) {
	if err := p.expectKw("LOCK"); err != nil {
		return nil, err
	}
	if p.isKw("TABLE") {
		if err := p.next(); err != nil {
			return nil, err
		}
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	st := &LockStmt{Table: name}
	if p.isKw("IN") {
		if err := p.next(); err != nil {
			return nil, err
		}
		var words []string
		for !p.isWord("MODE") {
			words = append(words, strings.ToUpper(p.tok.Val))
			if err := p.next(); err != nil {
				return nil, err
			}
		}
		if err := p.expectWord("MODE"); err != nil {
			return nil, err
		}
		st.Mode = strings.Join(words, " ")
	}
	return st, nil
}

func (p *Parser) parseVacuum() (Statement, error) {
	if err := p.expectKw("VACUUM"); err != nil {
		return nil, err
	}
	st := &VacuumStmt{}
	if p.isWord("FULL") {
		st.Full = true
		if err := p.next(); err != nil {
			return nil, err
		}
	}
	if p.tok.Kind == TokIdent {
		st.Table = p.tok.Val
		if err := p.next(); err != nil {
			return nil, err
		}
	}
	return st, nil
}

// parseFault parses the FAULT admin statement (see FaultStmt). The leading
// FAULT has already been matched.
func (p *Parser) parseFault() (Statement, error) {
	if err := p.next(); err != nil { // consume FAULT
		return nil, err
	}
	st := &FaultStmt{Seg: -1}
	switch {
	case p.isWord("STATUS"):
		st.Verb = FaultStatus
		return st, p.next()
	case p.isWord("RESET"):
		st.Verb = FaultReset
		if err := p.next(); err != nil {
			return nil, err
		}
		if p.tok.Kind == TokString || p.tok.Kind == TokIdent {
			st.Point = p.tok.Val
			return st, p.next()
		}
		return st, nil
	case p.isWord("RESUME"):
		st.Verb = FaultResume
		if err := p.next(); err != nil {
			return nil, err
		}
		name, err := p.parseFaultName()
		if err != nil {
			return nil, err
		}
		st.Point = name
		return st, nil
	case p.isWord("INJECT"):
		st.Verb = FaultInject
		if err := p.next(); err != nil {
			return nil, err
		}
		name, err := p.parseFaultName()
		if err != nil {
			return nil, err
		}
		st.Point = name
		for {
			switch {
			case p.isWord("ACTION"):
				if err := p.next(); err != nil {
					return nil, err
				}
				if p.tok.Kind != TokIdent && p.tok.Kind != TokKeyword && p.tok.Kind != TokString {
					return nil, p.errf("expected action name, found %s", p.tok)
				}
				st.Action = strings.ToLower(p.tok.Val)
				if err := p.next(); err != nil {
					return nil, err
				}
			case p.isWord("SEGMENT"):
				n, err := p.parseFaultInt("SEGMENT")
				if err != nil {
					return nil, err
				}
				st.Seg = n
			case p.isWord("MESSAGE"):
				if err := p.next(); err != nil {
					return nil, err
				}
				if p.tok.Kind != TokString {
					return nil, p.errf("expected string after MESSAGE, found %s", p.tok)
				}
				st.Message = p.tok.Val
				if err := p.next(); err != nil {
					return nil, err
				}
			case p.isWord("SLEEP"):
				n, err := p.parseFaultInt("SLEEP")
				if err != nil {
					return nil, err
				}
				st.SleepMS = n
			case p.isWord("START"):
				n, err := p.parseFaultInt("START")
				if err != nil {
					return nil, err
				}
				st.Start = n
			case p.isWord("COUNT"):
				n, err := p.parseFaultInt("COUNT")
				if err != nil {
					return nil, err
				}
				st.Count = n
			case p.isWord("PROBABILITY"):
				n, err := p.parseFaultInt("PROBABILITY")
				if err != nil {
					return nil, err
				}
				st.Probability = n
			case p.isWord("SEED"):
				n, err := p.parseFaultInt("SEED")
				if err != nil {
					return nil, err
				}
				st.Seed = int64(n)
			default:
				return st, nil
			}
		}
	default:
		return nil, p.errf("expected INJECT, RESET, RESUME or STATUS after FAULT, found %s", p.tok)
	}
}

// parseFaultName accepts a fault-point name as a string literal or bare
// identifier.
func (p *Parser) parseFaultName() (string, error) {
	if p.tok.Kind != TokString && p.tok.Kind != TokIdent {
		return "", p.errf("expected fault point name, found %s", p.tok)
	}
	name := p.tok.Val
	return name, p.next()
}

// parseFaultInt consumes the clause keyword's value: an optionally negated
// integer literal (SEGMENT -1 targets all segments).
func (p *Parser) parseFaultInt(clause string) (int, error) {
	if err := p.next(); err != nil { // consume the clause keyword
		return 0, err
	}
	neg := false
	if p.isOp("-") {
		neg = true
		if err := p.next(); err != nil {
			return 0, err
		}
	}
	if p.tok.Kind != TokInt {
		return 0, p.errf("expected integer after %s, found %s", clause, p.tok)
	}
	n, err := strconv.Atoi(p.tok.Val)
	if err != nil {
		return 0, p.errf("bad integer after %s: %v", clause, err)
	}
	if neg {
		n = -n
	}
	return n, p.next()
}

// ---------- Expression parsing (precedence climbing) ----------

// Binding powers, loosest to tightest.
const (
	precOr = iota + 1
	precAnd
	precNot
	precCmp
	precAdd
	precMul
	precUnary
)

func binaryPrec(op string) int {
	switch op {
	case "OR":
		return precOr
	case "AND":
		return precAnd
	case "=", "<>", "!=", "<", "<=", ">", ">=", "LIKE", "||":
		return precCmp
	case "+", "-":
		return precAdd
	case "*", "/", "%":
		return precMul
	default:
		return 0
	}
}

func (p *Parser) parseExpr() (Expr, error) { return p.parseBinary(1) }

func (p *Parser) currentBinaryOp() string {
	if p.tok.Kind == TokOp {
		switch p.tok.Val {
		case "=", "<>", "!=", "<", "<=", ">", ">=", "+", "-", "*", "/", "%", "||":
			return p.tok.Val
		}
	}
	if p.tok.Kind == TokKeyword {
		switch p.tok.Val {
		case "AND", "OR", "LIKE":
			return p.tok.Val
		}
	}
	return ""
}

func (p *Parser) parseBinary(minPrec int) (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		// Postfix predicates bind at comparison level.
		if minPrec <= precCmp {
			switch {
			case p.isKw("IS"):
				if err := p.next(); err != nil {
					return nil, err
				}
				neg := false
				if p.isKw("NOT") {
					neg = true
					if err := p.next(); err != nil {
						return nil, err
					}
				}
				if err := p.expectKw("NULL"); err != nil {
					return nil, err
				}
				left = &IsNullExpr{Operand: left, Negate: neg}
				continue
			case p.isKw("BETWEEN"):
				if err := p.next(); err != nil {
					return nil, err
				}
				lo, err := p.parseBinary(precAdd)
				if err != nil {
					return nil, err
				}
				if err := p.expectKw("AND"); err != nil {
					return nil, err
				}
				hi, err := p.parseBinary(precAdd)
				if err != nil {
					return nil, err
				}
				left = &BetweenExpr{Operand: left, Lo: lo, Hi: hi}
				continue
			case p.isKw("IN"):
				if err := p.next(); err != nil {
					return nil, err
				}
				if err := p.expectOp("("); err != nil {
					return nil, err
				}
				in := &InExpr{Operand: left}
				for {
					e, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					in.List = append(in.List, e)
					if !p.isOp(",") {
						break
					}
					if err := p.next(); err != nil {
						return nil, err
					}
				}
				if err := p.expectOp(")"); err != nil {
					return nil, err
				}
				left = in
				continue
			case p.isKw("NOT"):
				// NOT BETWEEN / NOT IN / NOT LIKE
				save := p.tok
				pk, err := p.peekTok()
				if err != nil {
					return nil, err
				}
				if pk.Kind == TokKeyword && (pk.Val == "BETWEEN" || pk.Val == "IN" || pk.Val == "LIKE") {
					if err := p.next(); err != nil { // consume NOT
						return nil, err
					}
					switch {
					case p.isKw("BETWEEN"):
						if err := p.next(); err != nil {
							return nil, err
						}
						lo, err := p.parseBinary(precAdd)
						if err != nil {
							return nil, err
						}
						if err := p.expectKw("AND"); err != nil {
							return nil, err
						}
						hi, err := p.parseBinary(precAdd)
						if err != nil {
							return nil, err
						}
						left = &BetweenExpr{Operand: left, Lo: lo, Hi: hi, Negate: true}
					case p.isKw("IN"):
						if err := p.next(); err != nil {
							return nil, err
						}
						if err := p.expectOp("("); err != nil {
							return nil, err
						}
						in := &InExpr{Operand: left, Negate: true}
						for {
							e, err := p.parseExpr()
							if err != nil {
								return nil, err
							}
							in.List = append(in.List, e)
							if !p.isOp(",") {
								break
							}
							if err := p.next(); err != nil {
								return nil, err
							}
						}
						if err := p.expectOp(")"); err != nil {
							return nil, err
						}
						left = in
					case p.isKw("LIKE"):
						if err := p.next(); err != nil {
							return nil, err
						}
						right, err := p.parseBinary(precAdd)
						if err != nil {
							return nil, err
						}
						left = &UnaryOp{Op: "NOT", Operand: &BinaryOp{Op: "LIKE", Left: left, Right: right}}
					}
					continue
				}
				_ = save
			}
		}
		op := p.currentBinaryOp()
		if op == "" {
			return left, nil
		}
		prec := binaryPrec(op)
		if prec < minPrec {
			return left, nil
		}
		if err := p.next(); err != nil {
			return nil, err
		}
		right, err := p.parseBinary(prec + 1)
		if err != nil {
			return nil, err
		}
		left = &BinaryOp{Op: op, Left: left, Right: right}
	}
}

func (p *Parser) parseUnary() (Expr, error) {
	switch {
	case p.isKw("NOT"):
		if err := p.next(); err != nil {
			return nil, err
		}
		e, err := p.parseBinary(precNot)
		if err != nil {
			return nil, err
		}
		return &UnaryOp{Op: "NOT", Operand: e}, nil
	case p.isOp("-"):
		if err := p.next(); err != nil {
			return nil, err
		}
		e, err := p.parseBinary(precUnary)
		if err != nil {
			return nil, err
		}
		if lit, ok := e.(*Literal); ok {
			switch lit.Value.Kind() {
			case types.KindInt:
				return &Literal{Value: types.NewInt(-lit.Value.Int())}, nil
			case types.KindFloat:
				return &Literal{Value: types.NewFloat(-lit.Value.Float())}, nil
			}
		}
		return &UnaryOp{Op: "-", Operand: e}, nil
	case p.isOp("+"):
		if err := p.next(); err != nil {
			return nil, err
		}
		return p.parseBinary(precUnary)
	default:
		return p.parsePrimary()
	}
}

func (p *Parser) parsePrimary() (Expr, error) {
	switch p.tok.Kind {
	case TokInt:
		v, err := strconv.ParseInt(p.tok.Val, 10, 64)
		if err != nil {
			return nil, p.errf("bad integer %q", p.tok.Val)
		}
		if err := p.next(); err != nil {
			return nil, err
		}
		return &Literal{Value: types.NewInt(v)}, nil
	case TokFloat:
		v, err := strconv.ParseFloat(p.tok.Val, 64)
		if err != nil {
			return nil, p.errf("bad float %q", p.tok.Val)
		}
		if err := p.next(); err != nil {
			return nil, err
		}
		return &Literal{Value: types.NewFloat(v)}, nil
	case TokString:
		s := p.tok.Val
		if err := p.next(); err != nil {
			return nil, err
		}
		return &Literal{Value: types.NewText(s)}, nil
	case TokParam:
		idx, err := strconv.Atoi(p.tok.Val[1:])
		if err != nil || idx < 1 {
			return nil, p.errf("bad parameter %q", p.tok.Val)
		}
		if err := p.next(); err != nil {
			return nil, err
		}
		return &Param{Index: idx}, nil
	case TokKeyword:
		switch p.tok.Val {
		case "NULL":
			if err := p.next(); err != nil {
				return nil, err
			}
			return &Literal{Value: types.Null}, nil
		case "TRUE":
			if err := p.next(); err != nil {
				return nil, err
			}
			return &Literal{Value: types.NewBool(true)}, nil
		case "FALSE":
			if err := p.next(); err != nil {
				return nil, err
			}
			return &Literal{Value: types.NewBool(false)}, nil
		case "CASE":
			return p.parseCase()
		case "EXISTS":
			return nil, p.errf("EXISTS subqueries are not supported")
		case "COUNT", "SUM", "AVG", "MIN", "MAX":
			name := strings.ToLower(p.tok.Val)
			if err := p.next(); err != nil {
				return nil, err
			}
			return p.parseCallArgs(name)
		default:
			return nil, p.errf("unexpected keyword %s in expression", p.tok.Val)
		}
	case TokIdent:
		name := p.tok.Val
		if err := p.next(); err != nil {
			return nil, err
		}
		if p.isOp("(") {
			return p.parseCallArgs(strings.ToLower(name))
		}
		if p.isOp(".") {
			if err := p.next(); err != nil {
				return nil, err
			}
			if p.isOp("*") {
				if err := p.next(); err != nil {
					return nil, err
				}
				// table.* — represent as a ColumnRef with Column "*"; the
				// analyzer expands it.
				return &ColumnRef{Table: name, Column: "*"}, nil
			}
			col, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			return &ColumnRef{Table: name, Column: col}, nil
		}
		return &ColumnRef{Column: name}, nil
	case TokOp:
		if p.isOp("(") {
			if err := p.next(); err != nil {
				return nil, err
			}
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	}
	return nil, p.errf("unexpected token %s in expression", p.tok)
}

func (p *Parser) parseCallArgs(name string) (Expr, error) {
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	f := &FuncCall{Name: name}
	if p.isOp("*") {
		f.Star = true
		if err := p.next(); err != nil {
			return nil, err
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return f, nil
	}
	if p.isKw("DISTINCT") {
		f.Distinct = true
		if err := p.next(); err != nil {
			return nil, err
		}
	}
	if !p.isOp(")") {
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			f.Args = append(f.Args, e)
			if !p.isOp(",") {
				break
			}
			if err := p.next(); err != nil {
				return nil, err
			}
		}
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	return f, nil
}
