package sql

import (
	"strings"
	"testing"

	"repro/internal/types"
)

func parseOne(t *testing.T, q string) Statement {
	t.Helper()
	st, err := Parse(q)
	if err != nil {
		t.Fatalf("Parse(%q): %v", q, err)
	}
	return st
}

func TestLexerBasics(t *testing.T) {
	toks, err := Tokenize("SELECT a, 'it''s', 1.5e3, $2 FROM t -- comment\n/* block */ ;")
	if err != nil {
		t.Fatal(err)
	}
	kinds := []TokenKind{TokKeyword, TokIdent, TokOp, TokString, TokOp, TokFloat, TokOp, TokParam, TokKeyword, TokIdent, TokOp, TokEOF}
	if len(toks) != len(kinds) {
		t.Fatalf("token count = %d, want %d: %v", len(toks), len(kinds), toks)
	}
	for i, k := range kinds {
		if toks[i].Kind != k {
			t.Errorf("tok[%d] = %v (kind %d), want kind %d", i, toks[i], toks[i].Kind, k)
		}
	}
	if toks[3].Val != "it's" {
		t.Errorf("escaped string = %q", toks[3].Val)
	}
}

func TestLexerErrors(t *testing.T) {
	for _, q := range []string{"'unterminated", "/* open", `"unterminated`, "@bad"} {
		if _, err := Tokenize(q); err == nil {
			t.Errorf("Tokenize(%q) should fail", q)
		}
	}
}

func TestParseSelectFull(t *testing.T) {
	st := parseOne(t, `
		SELECT DISTINCT a.x, b.y AS why, count(*), sum(a.v + 1)
		FROM ta a JOIN tb b ON a.id = b.id
		WHERE a.x > 10 AND b.y LIKE 'q%' OR a.x IS NOT NULL
		GROUP BY a.x, b.y HAVING count(*) > 2
		ORDER BY 1 DESC, why LIMIT 10 OFFSET 5`)
	s := st.(*SelectStmt)
	if !s.Distinct || len(s.Items) != 4 || s.Where == nil || len(s.GroupBy) != 2 ||
		s.Having == nil || len(s.OrderBy) != 2 || s.Limit == nil || s.Offset == nil {
		t.Fatalf("parsed select missing pieces: %+v", s)
	}
	if s.Items[1].Alias != "why" {
		t.Errorf("alias = %q", s.Items[1].Alias)
	}
	if !s.OrderBy[0].Desc || s.OrderBy[1].Desc {
		t.Error("order by direction")
	}
	j := s.From.(*JoinRef)
	if j.Type != JoinInner || j.On == nil {
		t.Fatalf("join: %+v", j)
	}
}

func TestParseSelectForUpdate(t *testing.T) {
	s := parseOne(t, "SELECT * FROM t WHERE id = 1 FOR UPDATE").(*SelectStmt)
	if s.Lock != LockForUpdate {
		t.Fatal("FOR UPDATE not parsed")
	}
	s = parseOne(t, "SELECT * FROM t FOR SHARE").(*SelectStmt)
	if s.Lock != LockForShare {
		t.Fatal("FOR SHARE not parsed")
	}
}

func TestParseJoinVariants(t *testing.T) {
	s := parseOne(t, "SELECT * FROM a LEFT OUTER JOIN b USING (id, dt)").(*SelectStmt)
	j := s.From.(*JoinRef)
	if j.Type != JoinLeft || len(j.Using) != 2 {
		t.Fatalf("left join using: %+v", j)
	}
	s = parseOne(t, "SELECT * FROM a, b, c WHERE a.id = b.id").(*SelectStmt)
	j = s.From.(*JoinRef) // ((a,b),c)
	if j.Type != JoinCross {
		t.Fatal("comma join should be cross")
	}
	s = parseOne(t, "SELECT * FROM a CROSS JOIN b").(*SelectStmt)
	if s.From.(*JoinRef).Type != JoinCross {
		t.Fatal("cross join")
	}
}

func TestParseCreateTableDistribution(t *testing.T) {
	st := parseOne(t, `CREATE TABLE t (a int, b text NOT NULL, c numeric(10,2), d date PRIMARY KEY) DISTRIBUTED BY (a, b)`)
	c := st.(*CreateTableStmt)
	if len(c.Columns) != 4 {
		t.Fatalf("columns: %+v", c.Columns)
	}
	if c.Columns[2].Kind != types.KindFloat || c.Columns[3].Kind != types.KindDate {
		t.Fatalf("kinds: %+v", c.Columns)
	}
	if c.Distribution != DistributeHash || len(c.DistKeys) != 2 {
		t.Fatalf("distribution: %+v", c)
	}
	c = parseOne(t, "CREATE TABLE t (a int) DISTRIBUTED RANDOMLY").(*CreateTableStmt)
	if c.Distribution != DistributeRandomly {
		t.Fatal("randomly")
	}
	c = parseOne(t, "CREATE TABLE t (a int) DISTRIBUTED REPLICATED").(*CreateTableStmt)
	if c.Distribution != DistributeReplicated {
		t.Fatal("replicated")
	}
}

func TestParseCreateTableStorageAndPartitions(t *testing.T) {
	st := parseOne(t, `
		CREATE TABLE sales (id int, sdate date, amt float)
		WITH (appendonly=true, orientation=column)
		DISTRIBUTED BY (id)
		PARTITION BY RANGE (sdate) (
			PARTITION jun START ('2021-06-01') END ('2021-07-01'),
			PARTITION jul START ('2021-07-01') END ('2021-08-01') WITH (appendonly=true),
			PARTITION old START ('2020-01-01') END ('2021-06-01') WITH (appendonly=true, orientation=column)
		)`)
	c := st.(*CreateTableStmt)
	if c.Storage != StorageAOColumn {
		t.Fatalf("base storage = %v", c.Storage)
	}
	if c.PartitionBy != "sdate" || len(c.Partitions) != 3 {
		t.Fatalf("partitions: %+v", c.Partitions)
	}
	if c.Partitions[2].Storage != StorageAOColumn {
		t.Fatalf("partition storage: %v", c.Partitions[2].Storage)
	}
	if c.Partitions[0].Start.Kind() != types.KindDate {
		t.Fatalf("partition bound kind: %v", c.Partitions[0].Start.Kind())
	}
}

func TestParseInsertForms(t *testing.T) {
	i := parseOne(t, "INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')").(*InsertStmt)
	if len(i.Columns) != 2 || len(i.Rows) != 2 {
		t.Fatalf("insert: %+v", i)
	}
	i = parseOne(t, "INSERT INTO t SELECT * FROM s WHERE x > 0").(*InsertStmt)
	if i.Select == nil {
		t.Fatal("insert-select")
	}
}

func TestParseUpdateDelete(t *testing.T) {
	u := parseOne(t, "UPDATE t SET a = a + 1, b = 'z' WHERE id = 7").(*UpdateStmt)
	if len(u.Set) != 2 || u.Where == nil {
		t.Fatalf("update: %+v", u)
	}
	d := parseOne(t, "DELETE FROM t WHERE id IN (1, 2, 3)").(*DeleteStmt)
	if d.Where == nil {
		t.Fatal("delete where")
	}
	d = parseOne(t, "DELETE FROM t").(*DeleteStmt)
	if d.Where != nil {
		t.Fatal("unconditional delete")
	}
}

func TestParseTransactionControl(t *testing.T) {
	if _, ok := parseOne(t, "BEGIN").(*BeginStmt); !ok {
		t.Fatal("begin")
	}
	if _, ok := parseOne(t, "START TRANSACTION").(*BeginStmt); !ok {
		t.Fatal("start transaction")
	}
	if _, ok := parseOne(t, "COMMIT").(*CommitStmt); !ok {
		t.Fatal("commit")
	}
	if _, ok := parseOne(t, "ROLLBACK").(*RollbackStmt); !ok {
		t.Fatal("rollback")
	}
	if _, ok := parseOne(t, "ABORT").(*RollbackStmt); !ok {
		t.Fatal("abort")
	}
}

func TestParseLockModes(t *testing.T) {
	l := parseOne(t, "LOCK t2").(*LockStmt)
	if l.Table != "t2" || l.Mode != "" {
		t.Fatalf("lock: %+v", l)
	}
	l = parseOne(t, "LOCK TABLE t2 IN ACCESS EXCLUSIVE MODE").(*LockStmt)
	if l.Mode != "ACCESS EXCLUSIVE" {
		t.Fatalf("lock mode: %q", l.Mode)
	}
	l = parseOne(t, "LOCK TABLE t2 IN ROW EXCLUSIVE MODE").(*LockStmt)
	if l.Mode != "ROW EXCLUSIVE" {
		t.Fatalf("lock mode: %q", l.Mode)
	}
}

func TestParseResourceGroupDDL(t *testing.T) {
	// The paper's exact syntax (§6).
	st := parseOne(t, `CREATE RESOURCE GROUP olap_group WITH (CONCURRENCY=10, MEMORY_LIMIT=35, MEMORY_SHARED_QUOTA=20, CPU_RATE_LIMIT=20)`)
	g := st.(*CreateResourceGroupStmt)
	if g.Name != "olap_group" || len(g.Options) != 4 {
		t.Fatalf("resource group: %+v", g)
	}
	st = parseOne(t, `CREATE RESOURCE GROUP oltp_group WITH (CONCURRENCY=50, MEMORY_LIMIT=15, CPUSET=0-3)`)
	g = st.(*CreateResourceGroupStmt)
	var cpuset string
	for _, o := range g.Options {
		if o.Name == "CPUSET" {
			cpuset = o.Value
		}
	}
	if cpuset != "0-3" {
		t.Fatalf("cpuset = %q", cpuset)
	}
}

func TestParseRoleDDL(t *testing.T) {
	r := parseOne(t, "CREATE ROLE dev1 RESOURCE GROUP olap_group").(*CreateRoleStmt)
	if r.Name != "dev1" || r.ResourceGroup != "olap_group" {
		t.Fatalf("role: %+v", r)
	}
	a := parseOne(t, "ALTER ROLE dev1 RESOURCE GROUP oltp_group").(*AlterRoleStmt)
	if a.ResourceGroup != "oltp_group" {
		t.Fatalf("alter role: %+v", a)
	}
}

func TestParseMiscStatements(t *testing.T) {
	if v := parseOne(t, "VACUUM FULL t").(*VacuumStmt); !v.Full || v.Table != "t" {
		t.Fatalf("vacuum: %+v", v)
	}
	if tr := parseOne(t, "TRUNCATE TABLE t").(*TruncateStmt); tr.Name != "t" {
		t.Fatal("truncate")
	}
	if ix := parseOne(t, "CREATE INDEX i ON t (a, b)").(*CreateIndexStmt); len(ix.Columns) != 2 {
		t.Fatal("create index")
	}
	if e := parseOne(t, "EXPLAIN SELECT 1").(*ExplainStmt); e.Target == nil {
		t.Fatal("explain")
	}
	if s := parseOne(t, "SET optimizer = orca").(*SetStmt); s.Name != "optimizer" || s.Value != "orca" {
		t.Fatalf("set: %+v", s)
	}
	if d := parseOne(t, "DROP TABLE IF EXISTS t").(*DropTableStmt); !d.IfExists {
		t.Fatal("drop if exists")
	}
}

func TestParseExpressionPrecedence(t *testing.T) {
	s := parseOne(t, "SELECT 1 + 2 * 3").(*SelectStmt)
	if got := s.Items[0].Expr.String(); got != "(1 + (2 * 3))" {
		t.Fatalf("precedence: %s", got)
	}
	s = parseOne(t, "SELECT a OR b AND NOT c").(*SelectStmt)
	if got := s.Items[0].Expr.String(); got != "(a OR (b AND (NOT c)))" {
		t.Fatalf("bool precedence: %s", got)
	}
	s = parseOne(t, "SELECT a BETWEEN 1 AND 2 OR b").(*SelectStmt)
	if got := s.Items[0].Expr.String(); got != "((a BETWEEN 1 AND 2) OR b)" {
		t.Fatalf("between binding: %s", got)
	}
}

func TestParseCaseExpr(t *testing.T) {
	s := parseOne(t, "SELECT CASE WHEN a > 0 THEN 'pos' WHEN a < 0 THEN 'neg' ELSE 'zero' END FROM t").(*SelectStmt)
	c := s.Items[0].Expr.(*CaseExpr)
	if len(c.Whens) != 2 || c.Else == nil {
		t.Fatalf("case: %+v", c)
	}
}

func TestParseAllScript(t *testing.T) {
	stmts, err := ParseAll(`
		CREATE TABLE a (x int);
		INSERT INTO a VALUES (1);
		SELECT * FROM a;
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 3 {
		t.Fatalf("statements = %d", len(stmts))
	}
}

func TestParseErrorsHavePosition(t *testing.T) {
	_, err := Parse("SELECT FROM")
	if err == nil {
		t.Fatal("expected error")
	}
	var perr *ParseError
	if !errorsAs(err, &perr) {
		t.Fatalf("error type %T: %v", err, err)
	}
	if perr.Line != 1 || perr.Col < 1 {
		t.Fatalf("position: %+v", perr)
	}
	if !strings.Contains(err.Error(), "parse error") {
		t.Fatalf("message: %v", err)
	}
}

// errorsAs is a local generics-free errors.As for *ParseError.
func errorsAs(err error, target **ParseError) bool {
	for err != nil {
		if pe, ok := err.(*ParseError); ok {
			*target = pe
			return true
		}
		type unwrapper interface{ Unwrap() error }
		u, ok := err.(unwrapper)
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

func TestParseNegativeNumbersAndUnary(t *testing.T) {
	s := parseOne(t, "SELECT -5, -x, +3").(*SelectStmt)
	if lit, ok := s.Items[0].Expr.(*Literal); !ok || lit.Value.Int() != -5 {
		t.Fatalf("folded negative literal: %v", s.Items[0].Expr)
	}
	if _, ok := s.Items[1].Expr.(*UnaryOp); !ok {
		t.Fatalf("unary minus on column: %T", s.Items[1].Expr)
	}
}

func TestParseNotVariants(t *testing.T) {
	s := parseOne(t, "SELECT * FROM t WHERE a NOT IN (1,2) AND b NOT BETWEEN 1 AND 2 AND c NOT LIKE 'x%'").(*SelectStmt)
	if s.Where == nil {
		t.Fatal("where")
	}
	str := s.Where.String()
	for _, frag := range []string{"NOT IN", "NOT BETWEEN", "NOT"} {
		if !strings.Contains(str, frag) {
			t.Errorf("missing %q in %s", frag, str)
		}
	}
}

func TestParseAlterSystemExpand(t *testing.T) {
	st := parseOne(t, "ALTER SYSTEM EXPAND TO 8").(*AlterSystemExpandStmt)
	if st.Target != 8 {
		t.Fatalf("target = %d, want 8", st.Target)
	}
	if got := st.String(); got != "ALTER SYSTEM EXPAND TO 8" {
		t.Fatalf("String() = %q", got)
	}
	for _, q := range []string{
		"ALTER SYSTEM EXPAND 8",     // missing TO
		"ALTER SYSTEM EXPAND TO 0",  // target must be positive
		"ALTER SYSTEM EXPAND TO -3", // target must be positive
		"ALTER SYSTEM EXPAND TO x",  // target must be an integer
		"ALTER SYSTEM RESIZE TO 8",  // unknown ALTER SYSTEM verb
	} {
		if _, err := Parse(q); err == nil {
			t.Errorf("Parse(%q) should fail", q)
		}
	}
}
