package sql

import (
	"fmt"
	"strings"
)

// Lexer tokenizes SQL text. It is a straightforward single-pass scanner with
// one token of lookahead managed by the parser.
type Lexer struct {
	src  string
	pos  int
	line int
	col  int
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

// LexError reports a lexical error with position information.
type LexError struct {
	Msg  string
	Line int
	Col  int
}

func (e *LexError) Error() string {
	return fmt.Sprintf("sql: lex error at %d:%d: %s", e.Line, e.Col, e.Msg)
}

func (l *Lexer) errf(format string, args ...any) error {
	return &LexError{Msg: fmt.Sprintf(format, args...), Line: l.line, Col: l.col}
}

func (l *Lexer) peekByte() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *Lexer) peekByteAt(off int) byte {
	if l.pos+off >= len(l.src) {
		return 0
	}
	return l.src[l.pos+off]
}

func (l *Lexer) advance() byte {
	c := l.src[l.pos]
	l.pos++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func isSpace(c byte) bool { return c == ' ' || c == '\t' || c == '\n' || c == '\r' }

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentCont(c byte) bool { return isIdentStart(c) || isDigit(c) }

// skipSpaceAndComments consumes whitespace, -- line comments and /* */ blocks.
func (l *Lexer) skipSpaceAndComments() error {
	for l.pos < len(l.src) {
		c := l.peekByte()
		switch {
		case isSpace(c):
			l.advance()
		case c == '-' && l.peekByteAt(1) == '-':
			for l.pos < len(l.src) && l.peekByte() != '\n' {
				l.advance()
			}
		case c == '/' && l.peekByteAt(1) == '*':
			l.advance()
			l.advance()
			closed := false
			for l.pos < len(l.src) {
				if l.peekByte() == '*' && l.peekByteAt(1) == '/' {
					l.advance()
					l.advance()
					closed = true
					break
				}
				l.advance()
			}
			if !closed {
				return l.errf("unterminated block comment")
			}
		default:
			return nil
		}
	}
	return nil
}

// Next returns the next token.
func (l *Lexer) Next() (Token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return Token{}, err
	}
	start, line, col := l.pos, l.line, l.col
	if l.pos >= len(l.src) {
		return Token{Kind: TokEOF, Pos: start, Line: line, Col: col}, nil
	}
	c := l.peekByte()
	switch {
	case isIdentStart(c):
		for l.pos < len(l.src) && isIdentCont(l.peekByte()) {
			l.advance()
		}
		word := l.src[start:l.pos]
		up := strings.ToUpper(word)
		if keywords[up] {
			return Token{Kind: TokKeyword, Val: up, Pos: start, Line: line, Col: col}, nil
		}
		return Token{Kind: TokIdent, Val: strings.ToLower(word), Pos: start, Line: line, Col: col}, nil
	case isDigit(c) || (c == '.' && isDigit(l.peekByteAt(1))):
		isFloat := false
		for l.pos < len(l.src) {
			b := l.peekByte()
			if isDigit(b) {
				l.advance()
				continue
			}
			if b == '.' && !isFloat {
				isFloat = true
				l.advance()
				continue
			}
			if (b == 'e' || b == 'E') && (isDigit(l.peekByteAt(1)) ||
				((l.peekByteAt(1) == '+' || l.peekByteAt(1) == '-') && isDigit(l.peekByteAt(2)))) {
				isFloat = true
				l.advance() // e
				if l.peekByte() == '+' || l.peekByte() == '-' {
					l.advance()
				}
				continue
			}
			break
		}
		kind := TokInt
		if isFloat {
			kind = TokFloat
		}
		return Token{Kind: kind, Val: l.src[start:l.pos], Pos: start, Line: line, Col: col}, nil
	case c == '\'':
		l.advance()
		var b strings.Builder
		for {
			if l.pos >= len(l.src) {
				return Token{}, l.errf("unterminated string literal")
			}
			ch := l.advance()
			if ch == '\'' {
				if l.peekByte() == '\'' { // escaped quote
					l.advance()
					b.WriteByte('\'')
					continue
				}
				break
			}
			b.WriteByte(ch)
		}
		return Token{Kind: TokString, Val: b.String(), Pos: start, Line: line, Col: col}, nil
	case c == '"':
		l.advance()
		var b strings.Builder
		for {
			if l.pos >= len(l.src) {
				return Token{}, l.errf("unterminated quoted identifier")
			}
			ch := l.advance()
			if ch == '"' {
				break
			}
			b.WriteByte(ch)
		}
		return Token{Kind: TokIdent, Val: b.String(), Pos: start, Line: line, Col: col}, nil
	case c == '$' && isDigit(l.peekByteAt(1)):
		l.advance()
		for l.pos < len(l.src) && isDigit(l.peekByte()) {
			l.advance()
		}
		return Token{Kind: TokParam, Val: l.src[start:l.pos], Pos: start, Line: line, Col: col}, nil
	default:
		// Multi-byte operators first.
		two := ""
		if l.pos+1 < len(l.src) {
			two = l.src[l.pos : l.pos+2]
		}
		switch two {
		case "<=", ">=", "<>", "!=", "||":
			l.advance()
			l.advance()
			return Token{Kind: TokOp, Val: two, Pos: start, Line: line, Col: col}, nil
		}
		switch c {
		case '+', '-', '*', '/', '%', '(', ')', ',', ';', '=', '<', '>', '.':
			l.advance()
			return Token{Kind: TokOp, Val: string(c), Pos: start, Line: line, Col: col}, nil
		}
		return Token{}, l.errf("unexpected character %q", string(c))
	}
}

// Tokenize scans the entire input, for tests and diagnostics.
func Tokenize(src string) ([]Token, error) {
	l := NewLexer(src)
	var toks []Token
	for {
		t, err := l.Next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.Kind == TokEOF {
			return toks, nil
		}
	}
}
