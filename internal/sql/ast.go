package sql

import (
	"fmt"
	"strings"

	"repro/internal/types"
)

// Statement is any parsed SQL statement.
type Statement interface {
	stmt()
	String() string
}

// Expr is any scalar expression node.
type Expr interface {
	expr()
	String() string
}

// ---------- Expressions ----------

// ColumnRef names a column, optionally qualified by table alias.
type ColumnRef struct {
	Table  string // optional
	Column string
}

func (*ColumnRef) expr() {}
func (c *ColumnRef) String() string {
	if c.Table != "" {
		return c.Table + "." + c.Column
	}
	return c.Column
}

// Literal is a constant value.
type Literal struct {
	Value types.Datum
}

func (*Literal) expr() {}
func (l *Literal) String() string {
	if l.Value.Kind() == types.KindText {
		return "'" + strings.ReplaceAll(l.Value.Text(), "'", "''") + "'"
	}
	return l.Value.String()
}

// Param is a positional parameter $N (1-based).
type Param struct{ Index int }

func (*Param) expr()            {}
func (p *Param) String() string { return fmt.Sprintf("$%d", p.Index) }

// BinaryOp applies an infix operator.
type BinaryOp struct {
	Op          string // =, <>, <, <=, >, >=, +, -, *, /, %, AND, OR, LIKE, ||
	Left, Right Expr
}

func (*BinaryOp) expr() {}
func (b *BinaryOp) String() string {
	return fmt.Sprintf("(%s %s %s)", b.Left, b.Op, b.Right)
}

// UnaryOp applies a prefix operator: -, NOT.
type UnaryOp struct {
	Op      string
	Operand Expr
}

func (*UnaryOp) expr()            {}
func (u *UnaryOp) String() string { return fmt.Sprintf("(%s %s)", u.Op, u.Operand) }

// IsNullExpr tests IS [NOT] NULL.
type IsNullExpr struct {
	Operand Expr
	Negate  bool
}

func (*IsNullExpr) expr() {}
func (e *IsNullExpr) String() string {
	if e.Negate {
		return fmt.Sprintf("(%s IS NOT NULL)", e.Operand)
	}
	return fmt.Sprintf("(%s IS NULL)", e.Operand)
}

// InExpr tests membership in a literal list.
type InExpr struct {
	Operand Expr
	List    []Expr
	Negate  bool
}

func (*InExpr) expr() {}
func (e *InExpr) String() string {
	items := make([]string, len(e.List))
	for i, x := range e.List {
		items[i] = x.String()
	}
	neg := ""
	if e.Negate {
		neg = " NOT"
	}
	return fmt.Sprintf("(%s%s IN (%s))", e.Operand, neg, strings.Join(items, ", "))
}

// BetweenExpr tests range membership.
type BetweenExpr struct {
	Operand, Lo, Hi Expr
	Negate          bool
}

func (*BetweenExpr) expr() {}
func (e *BetweenExpr) String() string {
	neg := ""
	if e.Negate {
		neg = " NOT"
	}
	return fmt.Sprintf("(%s%s BETWEEN %s AND %s)", e.Operand, neg, e.Lo, e.Hi)
}

// FuncCall is an aggregate or scalar function call.
type FuncCall struct {
	Name     string // lower-case
	Args     []Expr
	Star     bool // COUNT(*)
	Distinct bool
}

func (*FuncCall) expr() {}
func (f *FuncCall) String() string {
	if f.Star {
		return f.Name + "(*)"
	}
	args := make([]string, len(f.Args))
	for i, a := range f.Args {
		args[i] = a.String()
	}
	d := ""
	if f.Distinct {
		d = "DISTINCT "
	}
	return fmt.Sprintf("%s(%s%s)", f.Name, d, strings.Join(args, ", "))
}

// CaseExpr is CASE WHEN ... THEN ... [ELSE ...] END.
type CaseExpr struct {
	Whens []CaseWhen
	Else  Expr
}

// CaseWhen is one WHEN/THEN branch.
type CaseWhen struct {
	Cond Expr
	Then Expr
}

func (*CaseExpr) expr() {}
func (c *CaseExpr) String() string {
	var b strings.Builder
	b.WriteString("CASE")
	for _, w := range c.Whens {
		fmt.Fprintf(&b, " WHEN %s THEN %s", w.Cond, w.Then)
	}
	if c.Else != nil {
		fmt.Fprintf(&b, " ELSE %s", c.Else)
	}
	b.WriteString(" END")
	return b.String()
}

// ---------- Table references ----------

// TableRef is a FROM-clause item.
type TableRef interface {
	tableRef()
	String() string
}

// BaseTable names a catalog table with an optional alias.
type BaseTable struct {
	Name  string
	Alias string
}

func (*BaseTable) tableRef() {}
func (t *BaseTable) String() string {
	if t.Alias != "" {
		return t.Name + " " + t.Alias
	}
	return t.Name
}

// JoinType enumerates join shapes.
type JoinType uint8

// Join types.
const (
	JoinInner JoinType = iota
	JoinLeft
	JoinCross
)

func (j JoinType) String() string {
	switch j {
	case JoinLeft:
		return "LEFT JOIN"
	case JoinCross:
		return "CROSS JOIN"
	default:
		return "JOIN"
	}
}

// JoinRef is a binary join between two table refs.
type JoinRef struct {
	Type        JoinType
	Left, Right TableRef
	On          Expr     // nil for CROSS or USING
	Using       []string // non-empty for USING(...)
}

func (*JoinRef) tableRef() {}
func (j *JoinRef) String() string {
	s := fmt.Sprintf("%s %s %s", j.Left, j.Type, j.Right)
	if j.On != nil {
		s += " ON " + j.On.String()
	} else if len(j.Using) > 0 {
		s += " USING (" + strings.Join(j.Using, ", ") + ")"
	}
	return s
}

// SubqueryRef is a derived table: (SELECT ...) alias.
type SubqueryRef struct {
	Select *SelectStmt
	Alias  string
}

func (*SubqueryRef) tableRef() {}
func (s *SubqueryRef) String() string {
	return fmt.Sprintf("(%s) %s", s.Select, s.Alias)
}

// ---------- Statements ----------

// SelectItem is one projection with an optional alias; Star selects all.
type SelectItem struct {
	Expr  Expr
	Alias string
	Star  bool
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// LockStrength is the FOR UPDATE / FOR SHARE suffix of a SELECT.
type LockStrength uint8

// Lock strengths.
const (
	LockNone LockStrength = iota
	LockForShare
	LockForUpdate
)

// SelectStmt is a SELECT query.
type SelectStmt struct {
	Items    []SelectItem
	From     TableRef // nil for SELECT <exprs>
	Where    Expr
	GroupBy  []Expr
	Having   Expr
	OrderBy  []OrderItem
	Limit    Expr // nil = no limit
	Offset   Expr
	Distinct bool
	Lock     LockStrength
}

func (*SelectStmt) stmt() {}
func (s *SelectStmt) String() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	if s.Distinct {
		b.WriteString("DISTINCT ")
	}
	for i, it := range s.Items {
		if i > 0 {
			b.WriteString(", ")
		}
		if it.Star {
			b.WriteString("*")
		} else {
			b.WriteString(it.Expr.String())
			if it.Alias != "" {
				b.WriteString(" AS " + it.Alias)
			}
		}
	}
	if s.From != nil {
		b.WriteString(" FROM " + s.From.String())
	}
	if s.Where != nil {
		b.WriteString(" WHERE " + s.Where.String())
	}
	if len(s.GroupBy) > 0 {
		b.WriteString(" GROUP BY ")
		for i, g := range s.GroupBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(g.String())
		}
	}
	if s.Having != nil {
		b.WriteString(" HAVING " + s.Having.String())
	}
	if len(s.OrderBy) > 0 {
		b.WriteString(" ORDER BY ")
		for i, o := range s.OrderBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(o.Expr.String())
			if o.Desc {
				b.WriteString(" DESC")
			}
		}
	}
	if s.Limit != nil {
		b.WriteString(" LIMIT " + s.Limit.String())
	}
	if s.Offset != nil {
		b.WriteString(" OFFSET " + s.Offset.String())
	}
	switch s.Lock {
	case LockForShare:
		b.WriteString(" FOR SHARE")
	case LockForUpdate:
		b.WriteString(" FOR UPDATE")
	}
	return b.String()
}

// ColumnDef is one column in CREATE TABLE.
type ColumnDef struct {
	Name string
	Kind types.Kind
}

// DistributionKind mirrors Greenplum's DISTRIBUTED BY clause.
type DistributionKind uint8

// Distribution kinds.
const (
	DistributeHash DistributionKind = iota
	DistributeRandomly
	DistributeReplicated
)

// StorageKind selects the table's storage engine.
type StorageKind uint8

// Storage kinds (paper §3.4).
const (
	StorageHeap StorageKind = iota
	StorageAORow
	StorageAOColumn
)

func (s StorageKind) String() string {
	switch s {
	case StorageAORow:
		return "ao_row"
	case StorageAOColumn:
		return "ao_column"
	default:
		return "heap"
	}
}

// PartitionDef is one RANGE partition: [Start, End).
type PartitionDef struct {
	Name    string
	Start   types.Datum
	End     types.Datum
	Storage StorageKind
}

// CreateTableStmt is CREATE TABLE with Greenplum distribution/partitioning.
type CreateTableStmt struct {
	Name         string
	Columns      []ColumnDef
	Distribution DistributionKind
	DistKeys     []string // for DistributeHash
	Storage      StorageKind
	PartitionBy  string // range-partition column, "" if none
	Partitions   []PartitionDef
	IfNotExists  bool
}

func (*CreateTableStmt) stmt() {}
func (c *CreateTableStmt) String() string {
	return fmt.Sprintf("CREATE TABLE %s (%d columns)", c.Name, len(c.Columns))
}

// DropTableStmt is DROP TABLE.
type DropTableStmt struct {
	Name     string
	IfExists bool
}

func (*DropTableStmt) stmt()            {}
func (d *DropTableStmt) String() string { return "DROP TABLE " + d.Name }

// TruncateStmt is TRUNCATE TABLE.
type TruncateStmt struct{ Name string }

func (*TruncateStmt) stmt()            {}
func (t *TruncateStmt) String() string { return "TRUNCATE " + t.Name }

// InsertStmt is INSERT INTO ... VALUES or INSERT INTO ... SELECT.
type InsertStmt struct {
	Table   string
	Columns []string // optional
	Rows    [][]Expr // literal rows
	Select  *SelectStmt
}

func (*InsertStmt) stmt() {}
func (i *InsertStmt) String() string {
	return fmt.Sprintf("INSERT INTO %s (%d rows)", i.Table, len(i.Rows))
}

// Assignment is one SET column = expr in UPDATE.
type Assignment struct {
	Column string
	Value  Expr
}

// UpdateStmt is UPDATE ... SET ... WHERE.
type UpdateStmt struct {
	Table string
	Set   []Assignment
	Where Expr
}

func (*UpdateStmt) stmt()            {}
func (u *UpdateStmt) String() string { return "UPDATE " + u.Table }

// DeleteStmt is DELETE FROM ... WHERE.
type DeleteStmt struct {
	Table string
	Where Expr
}

func (*DeleteStmt) stmt()            {}
func (d *DeleteStmt) String() string { return "DELETE FROM " + d.Table }

// BeginStmt starts a transaction.
type BeginStmt struct{}

func (*BeginStmt) stmt()          {}
func (*BeginStmt) String() string { return "BEGIN" }

// CommitStmt commits a transaction.
type CommitStmt struct{}

func (*CommitStmt) stmt()          {}
func (*CommitStmt) String() string { return "COMMIT" }

// RollbackStmt aborts a transaction.
type RollbackStmt struct{}

func (*RollbackStmt) stmt()          {}
func (*RollbackStmt) String() string { return "ROLLBACK" }

// LockStmt is LOCK [TABLE] name [IN <mode> MODE].
type LockStmt struct {
	Table string
	Mode  string // normalized, e.g. "ACCESS EXCLUSIVE"; "" = default exclusive
}

func (*LockStmt) stmt()            {}
func (l *LockStmt) String() string { return "LOCK TABLE " + l.Table }

// VacuumStmt is VACUUM [FULL] [table].
type VacuumStmt struct {
	Table string // "" = all
	Full  bool
}

func (*VacuumStmt) stmt()            {}
func (v *VacuumStmt) String() string { return "VACUUM " + v.Table }

// AnalyzeStmt is ANALYZE [table]: collect optimizer statistics.
type AnalyzeStmt struct {
	Table string // "" = all tables
}

func (*AnalyzeStmt) stmt() {}
func (a *AnalyzeStmt) String() string {
	if a.Table == "" {
		return "ANALYZE"
	}
	return "ANALYZE " + a.Table
}

// CreateIndexStmt is CREATE INDEX name ON table (col).
type CreateIndexStmt struct {
	Name    string
	Table   string
	Columns []string
}

func (*CreateIndexStmt) stmt()            {}
func (c *CreateIndexStmt) String() string { return "CREATE INDEX " + c.Name }

// ResourceGroupOption is one WITH(...) setting.
type ResourceGroupOption struct {
	Name  string // normalized upper-case, e.g. CONCURRENCY
	Value string
}

// CreateResourceGroupStmt mirrors CREATE RESOURCE GROUP ... WITH (...).
type CreateResourceGroupStmt struct {
	Name    string
	Options []ResourceGroupOption
}

func (*CreateResourceGroupStmt) stmt() {}
func (c *CreateResourceGroupStmt) String() string {
	return "CREATE RESOURCE GROUP " + c.Name
}

// DropResourceGroupStmt drops a resource group.
type DropResourceGroupStmt struct{ Name string }

func (*DropResourceGroupStmt) stmt() {}
func (d *DropResourceGroupStmt) String() string {
	return "DROP RESOURCE GROUP " + d.Name
}

// CreateRoleStmt is CREATE ROLE name [RESOURCE GROUP g].
type CreateRoleStmt struct {
	Name          string
	ResourceGroup string
}

func (*CreateRoleStmt) stmt()            {}
func (c *CreateRoleStmt) String() string { return "CREATE ROLE " + c.Name }

// AlterRoleStmt is ALTER ROLE name RESOURCE GROUP g.
type AlterRoleStmt struct {
	Name          string
	ResourceGroup string
}

func (*AlterRoleStmt) stmt()            {}
func (a *AlterRoleStmt) String() string { return "ALTER ROLE " + a.Name }

// AlterSystemExpandStmt is ALTER SYSTEM EXPAND TO n: grow the cluster to n
// segments and rebalance tables online.
type AlterSystemExpandStmt struct {
	Target int
}

func (*AlterSystemExpandStmt) stmt() {}
func (a *AlterSystemExpandStmt) String() string {
	return fmt.Sprintf("ALTER SYSTEM EXPAND TO %d", a.Target)
}

// ExplainStmt wraps another statement for plan display. With Analyze set
// the statement is executed and runtime counters (blocks scanned/skipped,
// rows, elapsed time) are appended to the plan text.
type ExplainStmt struct {
	Target  Statement
	Analyze bool
}

func (*ExplainStmt) stmt() {}
func (e *ExplainStmt) String() string {
	if e.Analyze {
		return "EXPLAIN ANALYZE " + e.Target.String()
	}
	return "EXPLAIN " + e.Target.String()
}

// FaultVerb selects the FAULT sub-command.
type FaultVerb uint8

// Fault verbs.
const (
	// FaultInject arms a fault-point spec.
	FaultInject FaultVerb = iota
	// FaultReset disarms a point (or every point).
	FaultReset
	// FaultResume wakes goroutines hung at a point.
	FaultResume
	// FaultStatus lists armed specs.
	FaultStatus
)

// FaultStmt is the fault-injection admin statement, mirroring Greenplum's
// gp_inject_fault:
//
//	FAULT INJECT 'point' [ACTION error|panic|sleep|hang|torn_write|skip]
//	      [SEGMENT n] [MESSAGE 'text'] [SLEEP ms] [START n] [COUNT n]
//	      [PROBABILITY pct] [SEED n]
//	FAULT RESET ['point']
//	FAULT RESUME 'point'
//	FAULT STATUS
type FaultStmt struct {
	Verb  FaultVerb
	Point string // "" for STATUS and RESET-all
	// Seg targets one segment (-1 = all segments and the coordinator).
	Seg         int
	Action      string // normalized lower-case; "" defaults to error
	Message     string
	SleepMS     int
	Start       int
	Count       int
	Probability int
	Seed        int64
}

func (*FaultStmt) stmt() {}
func (f *FaultStmt) String() string {
	switch f.Verb {
	case FaultReset:
		if f.Point == "" {
			return "FAULT RESET"
		}
		return "FAULT RESET '" + f.Point + "'"
	case FaultResume:
		return "FAULT RESUME '" + f.Point + "'"
	case FaultStatus:
		return "FAULT STATUS"
	default:
		s := "FAULT INJECT '" + f.Point + "'"
		if f.Action != "" {
			s += " ACTION " + f.Action
		}
		if f.Seg != -1 {
			s += fmt.Sprintf(" SEGMENT %d", f.Seg)
		}
		return s
	}
}

// ShowStmt is SHOW name: session settings plus the virtual counters the
// engine exposes (e.g. SHOW scan_stats).
type ShowStmt struct{ Name string }

func (*ShowStmt) stmt()            {}
func (s *ShowStmt) String() string { return "SHOW " + s.Name }

// SetStmt is SET name = value (session settings, e.g. optimizer choice).
type SetStmt struct {
	Name  string
	Value string
}

func (*SetStmt) stmt()            {}
func (s *SetStmt) String() string { return fmt.Sprintf("SET %s = %s", s.Name, s.Value) }
