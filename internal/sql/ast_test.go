package sql

import (
	"strings"
	"testing"
)

// TestSelectStringRoundTrip: a parsed SELECT's String() must itself parse
// back to an equivalent statement (fixed point after one round).
func TestSelectStringRoundTrip(t *testing.T) {
	queries := []string{
		"SELECT a, b AS bee FROM t WHERE a > 1 ORDER BY a DESC LIMIT 3",
		"SELECT DISTINCT x FROM t1 JOIN t2 ON t1.id = t2.id",
		"SELECT count(*), sum(v) FROM t GROUP BY g HAVING count(*) > 1",
		"SELECT * FROM a LEFT JOIN b USING (id)",
		"SELECT CASE WHEN a > 0 THEN 1 ELSE 0 END FROM t",
		"SELECT a FROM t WHERE a IN (1, 2, 3) AND b BETWEEN 1 AND 9",
		"SELECT a FROM t WHERE a IS NOT NULL FOR UPDATE",
		"SELECT a FROM t OFFSET 2",
	}
	for _, q := range queries {
		st1, err := Parse(q)
		if err != nil {
			t.Fatalf("parse %q: %v", q, err)
		}
		s1 := st1.String()
		st2, err := Parse(s1)
		if err != nil {
			t.Fatalf("re-parse %q (from %q): %v", s1, q, err)
		}
		if s2 := st2.String(); s2 != s1 {
			t.Errorf("not a fixed point:\n  1: %s\n  2: %s", s1, s2)
		}
	}
}

func TestStatementStringForms(t *testing.T) {
	cases := map[string]string{
		"BEGIN":                   "BEGIN",
		"COMMIT":                  "COMMIT",
		"ROLLBACK":                "ROLLBACK",
		"LOCK TABLE t":            "LOCK TABLE t",
		"VACUUM t":                "VACUUM t",
		"TRUNCATE t":              "TRUNCATE t",
		"DROP TABLE t":            "DROP TABLE t",
		"SET optimizer = orca":    "SET optimizer = orca",
		"UPDATE t SET a = 1":      "UPDATE t",
		"DELETE FROM t":           "DELETE FROM t",
		"CREATE INDEX i ON t (a)": "CREATE INDEX i",
		"EXPLAIN SELECT 1":        "EXPLAIN SELECT 1",
		"CREATE ROLE r":           "CREATE ROLE r",
		"DROP RESOURCE GROUP g":   "DROP RESOURCE GROUP g",
	}
	for q, want := range cases {
		st, err := Parse(q)
		if err != nil {
			t.Fatalf("parse %q: %v", q, err)
		}
		if got := st.String(); got != want {
			t.Errorf("String(%q) = %q, want %q", q, got, want)
		}
	}
}

func TestJoinTypeAndStorageStrings(t *testing.T) {
	if JoinInner.String() != "JOIN" || JoinLeft.String() != "LEFT JOIN" || JoinCross.String() != "CROSS JOIN" {
		t.Error("join type strings")
	}
	if StorageHeap.String() != "heap" || StorageAORow.String() != "ao_row" || StorageAOColumn.String() != "ao_column" {
		t.Error("storage strings")
	}
}

func TestExprStringEscaping(t *testing.T) {
	st, err := Parse("SELECT 'it''s'")
	if err != nil {
		t.Fatal(err)
	}
	s := st.(*SelectStmt).Items[0].Expr.String()
	if s != "'it''s'" {
		t.Fatalf("escaped literal String = %q", s)
	}
	if !strings.Contains(st.String(), "it''s") {
		t.Fatalf("statement String: %s", st)
	}
}
