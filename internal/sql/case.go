package sql

// parseCase parses CASE WHEN cond THEN val ... [ELSE val] END.
func (p *Parser) parseCase() (Expr, error) {
	if err := p.expectKw("CASE"); err != nil {
		return nil, err
	}
	c := &CaseExpr{}
	for p.isKw("WHEN") {
		if err := p.next(); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectKw("THEN"); err != nil {
			return nil, err
		}
		val, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Whens = append(c.Whens, CaseWhen{Cond: cond, Then: val})
	}
	if len(c.Whens) == 0 {
		return nil, p.errf("CASE requires at least one WHEN branch")
	}
	if p.isKw("ELSE") {
		if err := p.next(); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Else = e
	}
	if err := p.expectKw("END"); err != nil {
		return nil, err
	}
	return c, nil
}
