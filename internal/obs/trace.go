package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// SpanID identifies one span within its trace. 0 is "no parent" (the root).
type SpanID uint32

// Span is one finished timed region of a query: parse, plan, dispatch, a
// per-segment slice execution, or a per-operator interval synthesized from
// executor statistics. Start carries Go's monotonic clock reading, so Dur
// and ordering are immune to wall-clock steps.
type Span struct {
	ID     SpanID
	Parent SpanID
	Name   string
	Seg    int // segment id; -1 = coordinator
	Start  time.Time
	Dur    time.Duration
}

// Trace is one query's span tree. Begin/End/Record are safe for concurrent
// use from every slice-sender goroutine of a dispatched statement; span IDs
// are allocated atomically and travel with the dispatch so segment-side
// spans attach under the coordinator's execute span.
type Trace struct {
	QueryID uint64
	SQL     string
	Start   time.Time

	next atomic.Uint32
	open atomic.Int64 // begun but not yet ended (leak detector)

	mu    sync.Mutex
	spans []Span
}

// NewTrace starts a trace for one statement.
func NewTrace(queryID uint64, sql string) *Trace {
	return &Trace{QueryID: queryID, SQL: sql, Start: time.Now()}
}

// ActiveSpan is a begun, not-yet-finished span. The zero value (and any
// span begun on a nil trace) is inert: End and ID are no-ops, so tracing
// call sites need no nil checks — disarmed tracing costs two branches.
type ActiveSpan struct {
	t     *Trace
	id    SpanID
	name  string
	seg   int
	par   SpanID
	start time.Time
}

// Begin opens a span under parent. Safe on a nil trace (returns an inert
// span).
func (t *Trace) Begin(parent SpanID, name string, seg int) ActiveSpan {
	if t == nil {
		return ActiveSpan{}
	}
	t.open.Add(1)
	return ActiveSpan{t: t, id: SpanID(t.next.Add(1)), name: name, seg: seg, par: parent, start: time.Now()}
}

// End finishes the span and appends it to the trace.
func (s ActiveSpan) End() {
	if s.t == nil {
		return
	}
	sp := Span{ID: s.id, Parent: s.par, Name: s.name, Seg: s.seg, Start: s.start, Dur: time.Since(s.start)}
	s.t.mu.Lock()
	s.t.spans = append(s.t.spans, sp)
	s.t.mu.Unlock()
	s.t.open.Add(-1)
}

// ID returns the span's id (0 for an inert span).
func (s ActiveSpan) ID() SpanID { return s.id }

// Record appends an already-measured span (used to synthesize per-operator
// spans from executor statistics after the slices retire).
func (t *Trace) Record(parent SpanID, name string, seg int, start time.Time, dur time.Duration) {
	if t == nil {
		return
	}
	sp := Span{ID: SpanID(t.next.Add(1)), Parent: parent, Name: name, Seg: seg, Start: start, Dur: dur}
	t.mu.Lock()
	t.spans = append(t.spans, sp)
	t.mu.Unlock()
}

// Spans returns a copy of the finished spans, ordered by span id (creation
// order).
func (t *Trace) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]Span, len(t.spans))
	copy(out, t.spans)
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// OpenSpans reports how many spans were begun but never ended — non-zero
// after a query finishes means a span leak.
func (t *Trace) OpenSpans() int64 {
	if t == nil {
		return 0
	}
	return t.open.Load()
}

// Render returns the span tree as indented text lines, children under
// parents, each with segment and duration. Orphan spans (parent missing,
// e.g. a slice whose coordinator span id was not propagated) print at the
// root rather than disappearing.
func (t *Trace) Render() []string {
	spans := t.Spans()
	byParent := make(map[SpanID][]Span)
	ids := make(map[SpanID]bool, len(spans))
	for _, s := range spans {
		ids[s.ID] = true
	}
	for _, s := range spans {
		p := s.Parent
		if p != 0 && !ids[p] {
			p = 0
		}
		byParent[p] = append(byParent[p], s)
	}
	var out []string
	var walk func(parent SpanID, depth int)
	walk = func(parent SpanID, depth int) {
		for _, s := range byParent[parent] {
			loc := "coord"
			if s.Seg >= 0 {
				loc = fmt.Sprintf("seg%d", s.Seg)
			}
			out = append(out, fmt.Sprintf("%s%s [%s] %.3fms",
				strings.Repeat("  ", depth), s.Name, loc, float64(s.Dur)/1e6))
			walk(s.ID, depth+1)
		}
	}
	walk(0, 0)
	return out
}

// TraceStore is a bounded ring of finished traces (newest kept).
type TraceStore struct {
	mu    sync.Mutex
	ring  []*Trace
	next  int
	total int64
}

// NewTraceStore returns a store retaining up to capacity traces.
func NewTraceStore(capacity int) *TraceStore {
	if capacity <= 0 {
		capacity = 64
	}
	return &TraceStore{ring: make([]*Trace, capacity)}
}

// Add retains a finished trace, evicting the oldest when full.
func (s *TraceStore) Add(t *Trace) {
	if s == nil || t == nil {
		return
	}
	s.mu.Lock()
	s.ring[s.next] = t
	s.next = (s.next + 1) % len(s.ring)
	s.total++
	s.mu.Unlock()
}

// Recent returns up to n retained traces, newest first.
func (s *TraceStore) Recent(n int) []*Trace {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if n <= 0 || n > len(s.ring) {
		n = len(s.ring)
	}
	out := make([]*Trace, 0, n)
	for i := 1; i <= len(s.ring) && len(out) < n; i++ {
		t := s.ring[(s.next-i+len(s.ring))%len(s.ring)]
		if t != nil {
			out = append(out, t)
		}
	}
	return out
}

// Len reports how many traces are currently retained.
func (s *TraceStore) Len() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, t := range s.ring {
		if t != nil {
			n++
		}
	}
	return n
}
