package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// promName mangles a dotted metric name into the Prometheus exposition
// charset: dots and dashes become underscores.
func promName(name string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			return r
		default:
			return '_'
		}
	}, name)
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): counters and gauges as untyped samples, histograms
// as the standard _bucket/_sum/_count triple with cumulative le labels.
func (r *Registry) WritePrometheus(w io.Writer) error {
	s := r.Snapshot()
	names := make([]string, 0, len(s.Values))
	for n := range s.Values {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if _, err := fmt.Fprintf(w, "%s %d\n", promName(n), s.Values[n]); err != nil {
			return err
		}
	}
	hnames := make([]string, 0, len(s.Hists))
	for n := range s.Hists {
		hnames = append(hnames, n)
	}
	sort.Strings(hnames)
	for _, n := range hnames {
		h := s.Hists[n]
		pn := promName(n)
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", pn); err != nil {
			return err
		}
		cum := int64(0)
		for i, b := range h.Bounds {
			cum += h.Buckets[i]
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", pn, trimFloat(b), cum); err != nil {
				return err
			}
		}
		cum += h.Buckets[len(h.Bounds)]
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", pn, cum); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum %g\n%s_count %d\n", pn, h.Sum.Seconds(), pn, h.Count); err != nil {
			return err
		}
	}
	return nil
}

// trimFloat formats a bucket bound without trailing zeros (0.005, not 5e-03).
func trimFloat(f float64) string {
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.6f", f), "0"), ".")
}

// WriteJSON dumps the snapshot as one JSON object: flat name→value pairs
// plus per-histogram count/sum/bucket arrays. Used by gpbench -metrics so
// bench runs double as observability fixtures.
func (r *Registry) WriteJSON(w io.Writer) error {
	s := r.Snapshot()
	type histJSON struct {
		Count   int64     `json:"count"`
		SumSec  float64   `json:"sum_seconds"`
		Bounds  []float64 `json:"le"`
		Buckets []int64   `json:"buckets"`
	}
	out := struct {
		Metrics    map[string]int64    `json:"metrics"`
		Histograms map[string]histJSON `json:"histograms,omitempty"`
	}{Metrics: s.Values, Histograms: make(map[string]histJSON)}
	for n, h := range s.Hists {
		out.Histograms[n] = histJSON{Count: h.Count, SumSec: h.Sum.Seconds(), Bounds: h.Bounds, Buckets: h.Buckets}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
