package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRegistryCountersGaugesFuncs(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a.b.c")
	c.Add(3)
	c.Inc()
	if got := c.Load(); got != 4 {
		t.Fatalf("counter = %d, want 4", got)
	}
	if c2 := r.Counter("a.b.c"); c2 != c {
		t.Fatalf("second Counter() returned a different handle")
	}
	g := r.Gauge("g.x")
	g.Set(10)
	g.SetMax(7) // lower → ignored
	g.SetMax(12)
	if got := g.Load(); got != 12 {
		t.Fatalf("gauge = %d, want 12", got)
	}
	r.GaugeFunc("f.y", func() int64 { return 99 })
	if v, ok := r.Value("f.y"); !ok || v != 99 {
		t.Fatalf("Value(f.y) = %d,%v", v, ok)
	}
	if v, ok := r.Value("a.b.c"); !ok || v != 4 {
		t.Fatalf("Value(a.b.c) = %d,%v", v, ok)
	}
	if _, ok := r.Value("missing"); ok {
		t.Fatalf("Value(missing) should not exist")
	}
}

func TestRegistryNilSafety(t *testing.T) {
	var r *Registry
	r.Counter("x").Add(1)
	r.Gauge("y").Set(2)
	r.Histogram("z").Observe(time.Millisecond)
	r.GaugeFunc("f", func() int64 { return 1 })
	if len(r.Snapshot().Values) != 0 {
		t.Fatalf("nil registry snapshot should be empty")
	}
	var c *Counter
	c.Add(1)
	var g *Gauge
	g.SetMax(1)
	var h *Histogram
	h.Observe(time.Second)
	var tr *Trace
	sp := tr.Begin(0, "x", -1)
	sp.End()
	tr.Record(0, "y", 0, time.Time{}, 0)
}

// TestRegistryRace hammers one registry from many goroutines — handle
// creation, recording, snapshots, and scrapes all concurrent. Run under
// -race this is the registry's race gate.
func TestRegistryRace(t *testing.T) {
	r := NewRegistry()
	r.GaugeFunc("fn", func() int64 { return 7 })
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				r.Counter("c.shared").Inc()
				r.Gauge("g.shared").SetMax(int64(j))
				r.Histogram("h.shared").Observe(time.Duration(j) * time.Microsecond)
			}
		}()
	}
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				_ = r.Snapshot()
				_ = r.WritePrometheus(&strings.Builder{})
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c.shared").Load(); got != 8*500 {
		t.Fatalf("counter = %d, want %d (lost updates)", got, 8*500)
	}
}

func TestSnapshotDelta(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	c.Add(5)
	before := r.Snapshot()
	c.Add(7)
	d := r.Snapshot().Delta(before)
	if d["c"] != 7 {
		t.Fatalf("delta = %d, want 7", d["c"])
	}
}

func TestHistogramBucketsAndProm(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat.seconds")
	h.Observe(15 * time.Microsecond) // bucket le=2e-5
	h.Observe(3 * time.Millisecond)  // bucket le=5e-3
	h.Observe(20 * time.Second)      // +Inf
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE lat_seconds histogram",
		`lat_seconds_bucket{le="+Inf"} 3`,
		"lat_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
	snap := r.Snapshot().Hists["lat.seconds"]
	if snap.Count != 3 {
		t.Fatalf("hist count = %d, want 3", snap.Count)
	}
	sum := int64(0)
	for _, n := range snap.Buckets {
		sum += n
	}
	if sum != snap.Count {
		t.Fatalf("Σbuckets %d != count %d", sum, snap.Count)
	}
}

func TestWriteJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("a.b").Add(2)
	r.Histogram("h").Observe(time.Millisecond)
	var b strings.Builder
	if err := r.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"a.b": 2`, `"histograms"`, `"count": 1`} {
		if !strings.Contains(b.String(), want) {
			t.Fatalf("json missing %q:\n%s", want, b.String())
		}
	}
}

func TestTraceSpanTree(t *testing.T) {
	tr := NewTrace(42, "select 1")
	root := tr.Begin(0, "execute", -1)
	var wg sync.WaitGroup
	for seg := 0; seg < 4; seg++ {
		wg.Add(1)
		go func(seg int) {
			defer wg.Done()
			sp := tr.Begin(root.ID(), "slice 1", seg)
			sp.End()
		}(seg)
	}
	wg.Wait()
	root.End()
	if n := tr.OpenSpans(); n != 0 {
		t.Fatalf("OpenSpans = %d, want 0", n)
	}
	spans := tr.Spans()
	if len(spans) != 5 {
		t.Fatalf("len(spans) = %d, want 5", len(spans))
	}
	kids := 0
	for _, s := range spans {
		if s.Parent == root.ID() {
			kids++
		}
	}
	if kids != 4 {
		t.Fatalf("children of root = %d, want 4", kids)
	}
	lines := tr.Render()
	if len(lines) != 5 || !strings.HasPrefix(lines[0], "execute") {
		t.Fatalf("Render = %q", lines)
	}
	if !strings.HasPrefix(lines[1], "  slice 1") {
		t.Fatalf("child not indented: %q", lines[1])
	}
}

func TestTraceStoreRing(t *testing.T) {
	s := NewTraceStore(2)
	for i := 1; i <= 3; i++ {
		s.Add(NewTrace(uint64(i), "q"))
	}
	rec := s.Recent(10)
	if len(rec) != 2 || rec[0].QueryID != 3 || rec[1].QueryID != 2 {
		t.Fatalf("Recent = %+v", rec)
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestActivityRingsAndSessions(t *testing.T) {
	a := NewActivity(2, 2, 2)
	si := a.Register("admin")
	si.StartQuery("select 1")
	snaps := a.Sessions()
	if len(snaps) != 1 || snaps[0].State != "active" || snaps[0].Query != "select 1" {
		t.Fatalf("sessions = %+v", snaps)
	}
	si.EndQuery()
	for i := 1; i <= 3; i++ {
		a.Record(QueryRecord{QueryID: uint64(i), SQL: "q", Slow: i == 2})
	}
	h := a.History(10)
	if len(h) != 2 || h[0].QueryID != 3 || h[1].QueryID != 2 {
		t.Fatalf("history = %+v", h)
	}
	if sl := a.SlowQueries(10); len(sl) != 1 || sl[0].QueryID != 2 {
		t.Fatalf("slow = %+v", sl)
	}
	if a.Recorded() != 3 {
		t.Fatalf("Recorded = %d", a.Recorded())
	}
	a.SetEnabled(false)
	a.Record(QueryRecord{QueryID: 9})
	if a.Recorded() != 3 {
		t.Fatalf("disabled Record still counted")
	}
	a.Unregister(si)
	if len(a.Sessions()) != 0 {
		t.Fatalf("session not unregistered")
	}
}
