// Package obs is the engine-wide observability layer: a lock-light metrics
// registry (counters, gauges, histograms under stable dotted names with
// snapshot/delta APIs), per-query distributed traces feeding a bounded
// in-memory store and a slow-query log, and the session/query activity
// registry behind the gp_stat_* system views.
//
// The package is a dependency leaf (stdlib only) so every layer — storage,
// exec, WAL, dispatch, resource groups, fault injection, the server — can
// publish into one registry without import cycles. Handles returned by
// Counter/Gauge/Histogram are plain atomics: recording on the hot path is a
// single uncontended atomic add, never a map lookup or a lock.
package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric. The zero value is usable; a
// nil *Counter is a no-op, so call sites never need nil checks.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Load returns the current value.
func (c *Counter) Load() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable instantaneous value. The zero value is usable; nil is
// a no-op.
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Add adjusts the gauge by n (useful for in-flight counts).
func (g *Gauge) Add(n int64) {
	if g != nil {
		g.v.Add(n)
	}
}

// SetMax raises the gauge to n if n is larger (high-water marks).
func (g *Gauge) SetMax(n int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if n <= cur || g.v.CompareAndSwap(cur, n) {
			return
		}
	}
}

// Load returns the current value.
func (g *Gauge) Load() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histBounds are the histogram bucket upper bounds in seconds — a 1-2-5
// series from 10µs to 10s, wide enough for WAL fsync latencies and whole
// OLAP statements alike.
var histBounds = []float64{
	1e-5, 2e-5, 5e-5, 1e-4, 2e-4, 5e-4,
	1e-3, 2e-3, 5e-3, 1e-2, 2e-2, 5e-2,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// numBuckets counts the histogram buckets: one per bound plus +Inf.
const numBuckets = 20

func init() {
	if numBuckets != len(histBounds)+1 {
		panic("obs: numBuckets out of sync with histBounds")
	}
}

// Histogram accumulates duration observations into fixed exponential
// buckets. All fields are atomics; Observe is wait-free. Nil is a no-op.
type Histogram struct {
	buckets  [numBuckets]atomic.Int64 // last = +Inf
	count    atomic.Int64
	sumNanos atomic.Int64
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	s := d.Seconds()
	i := sort.SearchFloat64s(histBounds, s)
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sumNanos.Add(int64(d))
}

// HistSnapshot is a point-in-time copy of a histogram.
type HistSnapshot struct {
	Bounds  []float64 // upper bounds in seconds; one more bucket for +Inf
	Buckets []int64
	Count   int64
	Sum     time.Duration
}

// snapshot copies the histogram. Buckets are read without a global lock, so
// concurrent Observes may straddle the copy; totals are re-derived from the
// bucket copy to keep count == Σbuckets.
func (h *Histogram) snapshot() HistSnapshot {
	s := HistSnapshot{Bounds: histBounds, Buckets: make([]int64, len(h.buckets)), Sum: time.Duration(h.sumNanos.Load())}
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
		s.Count += s.Buckets[i]
	}
	return s
}

// Registry holds every registered metric under its dotted name. Metric
// registration takes a short lock; recording through the returned handles is
// lock-free. A nil *Registry hands out dangling (but safe) handles, so
// subsystems built without observability still run.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	funcs    map[string]func() int64
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		funcs:    make(map[string]func() int64),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the counter registered under name, creating it on first
// use. Safe for concurrent callers; all callers share one handle.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return new(Counter)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = new(Counter)
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return new(Gauge)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = new(Gauge)
		r.gauges[name] = g
	}
	return g
}

// GaugeFunc registers a computed gauge: fn is called at snapshot/scrape time.
// Use for values that already live elsewhere (cache occupancy, breaker
// states) so reads fold on demand instead of being pushed on the hot path.
func (r *Registry) GaugeFunc(name string, fn func() int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.funcs[name] = fn
	r.mu.Unlock()
}

// Histogram returns the histogram registered under name, creating it on
// first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return new(Histogram)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = new(Histogram)
		r.hists[name] = h
	}
	return h
}

// Value returns the current value of the counter, gauge, or gauge func
// registered under name.
func (r *Registry) Value(name string) (int64, bool) {
	if r == nil {
		return 0, false
	}
	r.mu.RLock()
	c, okC := r.counters[name]
	g, okG := r.gauges[name]
	fn, okF := r.funcs[name]
	r.mu.RUnlock()
	switch {
	case okC:
		return c.Load(), true
	case okG:
		return g.Load(), true
	case okF:
		return fn(), true
	}
	return 0, false
}

// Snapshot is a point-in-time copy of every registered metric.
type Snapshot struct {
	Values map[string]int64        // counters, gauges, gauge funcs
	Hists  map[string]HistSnapshot // histograms
}

// Snapshot captures every metric. Gauge funcs are evaluated outside the
// registry lock (they may take subsystem locks of their own).
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{Values: make(map[string]int64), Hists: make(map[string]HistSnapshot)}
	if r == nil {
		return s
	}
	r.mu.RLock()
	fns := make(map[string]func() int64, len(r.funcs))
	for n, v := range r.counters {
		s.Values[n] = v.Load()
	}
	for n, v := range r.gauges {
		s.Values[n] = v.Load()
	}
	for n, fn := range r.funcs {
		fns[n] = fn
	}
	for n, h := range r.hists {
		s.Hists[n] = h.snapshot()
	}
	r.mu.RUnlock()
	for n, fn := range fns {
		s.Values[n] = fn()
	}
	return s
}

// Delta returns cur − prev per metric name (names only in cur keep their
// value; names only in prev are dropped). Histograms are not differenced.
func (s Snapshot) Delta(prev Snapshot) map[string]int64 {
	d := make(map[string]int64, len(s.Values))
	for n, v := range s.Values {
		d[n] = v - prev.Values[n]
	}
	return d
}

// Names returns every registered metric name, sorted, histograms included.
func (s Snapshot) Names() []string {
	names := make([]string, 0, len(s.Values)+len(s.Hists))
	for n := range s.Values {
		names = append(names, n)
	}
	for n := range s.Hists {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
