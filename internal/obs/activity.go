package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// QueryRecord is one finished statement as retained by the gp_stat_queries
// history ring and the slow-query log. Totals (rows, blocks, spill) are the
// same counters EXPLAIN ANALYZE reports, folded once at statement end.
type QueryRecord struct {
	QueryID       uint64
	Session       uint64
	SQL           string
	Start         time.Time
	Dur           time.Duration
	Rows          int64 // rows returned (SELECT) or affected (DML)
	BlocksScanned int64
	BlocksSkipped int64
	SpillBytes    int64
	Err           string
	Slow          bool // crossed the session's log_min_duration threshold
}

// SessionInfo is one live session's entry in gp_stat_activity. The session
// goroutine is the only writer; readers copy under the mutex.
type SessionInfo struct {
	ID   uint64
	Role string

	mu         sync.Mutex
	state      string // "idle" or "active"
	query      string
	queryStart time.Time
	stmts      int64
}

// StartQuery marks the session active on the given statement.
func (s *SessionInfo) StartQuery(sql string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.state = "active"
	s.query = sql
	s.queryStart = time.Now()
	s.stmts++
	s.mu.Unlock()
}

// EndQuery marks the session idle again.
func (s *SessionInfo) EndQuery() {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.state = "idle"
	s.mu.Unlock()
}

// SessionSnapshot is a copy of one live session for gp_stat_activity.
type SessionSnapshot struct {
	ID         uint64
	Role       string
	State      string
	Query      string
	QueryStart time.Time
	Statements int64
}

// Activity tracks live sessions, the finished-query history ring, the
// slow-query log, and the trace store. One Activity serves the whole engine;
// the per-statement cost with tracing off is a handful of atomic ops and one
// short-lock ring append, which the obs-disarmed overhead gate holds to
// ≥0.95× of a stack with recording disabled.
type Activity struct {
	enabled atomic.Bool
	qseq    atomic.Uint64
	sseq    atomic.Uint64

	mu       sync.Mutex
	sessions map[uint64]*SessionInfo
	history  []QueryRecord // ring
	hNext    int
	hTotal   int64
	slow     []QueryRecord // ring
	sNext    int

	traces *TraceStore
}

// NewActivity returns an activity tracker retaining up to histCap finished
// queries, slowCap slow queries, and traceCap traces.
func NewActivity(histCap, slowCap, traceCap int) *Activity {
	if histCap <= 0 {
		histCap = 256
	}
	if slowCap <= 0 {
		slowCap = 128
	}
	a := &Activity{
		sessions: make(map[uint64]*SessionInfo),
		history:  make([]QueryRecord, histCap),
		slow:     make([]QueryRecord, slowCap),
		traces:   NewTraceStore(traceCap),
	}
	a.enabled.Store(true)
	return a
}

// SetEnabled toggles recording (the obs-overhead benchmark's baseline turns
// it off to reconstruct the pre-observability stack). Session registration
// stays on so gp_stat_activity never loses sessions.
func (a *Activity) SetEnabled(on bool) {
	if a != nil {
		a.enabled.Store(on)
	}
}

// Enabled reports whether query recording is on.
func (a *Activity) Enabled() bool { return a != nil && a.enabled.Load() }

// NextQueryID allocates a cluster-unique query id.
func (a *Activity) NextQueryID() uint64 {
	if a == nil {
		return 0
	}
	return a.qseq.Add(1)
}

// Register adds a live session and returns its entry.
func (a *Activity) Register(role string) *SessionInfo {
	if a == nil {
		return nil
	}
	si := &SessionInfo{ID: a.sseq.Add(1), Role: role, state: "idle"}
	a.mu.Lock()
	a.sessions[si.ID] = si
	a.mu.Unlock()
	return si
}

// Unregister removes a session (idempotent).
func (a *Activity) Unregister(si *SessionInfo) {
	if a == nil || si == nil {
		return
	}
	a.mu.Lock()
	delete(a.sessions, si.ID)
	a.mu.Unlock()
}

// Sessions snapshots every live session, ordered by id.
func (a *Activity) Sessions() []SessionSnapshot {
	if a == nil {
		return nil
	}
	a.mu.Lock()
	infos := make([]*SessionInfo, 0, len(a.sessions))
	for _, si := range a.sessions {
		infos = append(infos, si)
	}
	a.mu.Unlock()
	out := make([]SessionSnapshot, 0, len(infos))
	for _, si := range infos {
		si.mu.Lock()
		out = append(out, SessionSnapshot{
			ID: si.ID, Role: si.Role, State: si.state,
			Query: si.query, QueryStart: si.queryStart, Statements: si.stmts,
		})
		si.mu.Unlock()
	}
	sortSnapshots(out)
	return out
}

func sortSnapshots(s []SessionSnapshot) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j].ID < s[j-1].ID; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// Record retains one finished statement in the history ring (and the slow
// log when rec.Slow). No-op while recording is disabled.
func (a *Activity) Record(rec QueryRecord) {
	if a == nil || !a.enabled.Load() {
		return
	}
	a.mu.Lock()
	a.history[a.hNext] = rec
	a.hNext = (a.hNext + 1) % len(a.history)
	a.hTotal++
	if rec.Slow {
		a.slow[a.sNext] = rec
		a.sNext = (a.sNext + 1) % len(a.slow)
	}
	a.mu.Unlock()
}

// History returns up to n retained finished queries, newest first.
func (a *Activity) History(n int) []QueryRecord {
	return ringCopy(a, func() ([]QueryRecord, int) { return a.history, a.hNext }, n)
}

// SlowQueries returns up to n retained slow queries, newest first.
func (a *Activity) SlowQueries(n int) []QueryRecord {
	return ringCopy(a, func() ([]QueryRecord, int) { return a.slow, a.sNext }, n)
}

func ringCopy(a *Activity, get func() ([]QueryRecord, int), n int) []QueryRecord {
	if a == nil {
		return nil
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	ring, next := get()
	if n <= 0 || n > len(ring) {
		n = len(ring)
	}
	out := make([]QueryRecord, 0, n)
	for i := 1; i <= len(ring) && len(out) < n; i++ {
		r := ring[(next-i+len(ring))%len(ring)]
		if r.QueryID != 0 {
			out = append(out, r)
		}
	}
	return out
}

// Recorded reports the all-time count of recorded queries (used by chaos
// tests to prove exactly-once recording across failover and expansion).
func (a *Activity) Recorded() int64 {
	if a == nil {
		return 0
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.hTotal
}

// Traces returns the engine's trace store.
func (a *Activity) Traces() *TraceStore {
	if a == nil {
		return nil
	}
	return a.traces
}
