package server_test

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/server"
	"repro/internal/server/client"
	"repro/internal/workload"
)

// TestMetricsHTTPUnderTPCB is the acceptance scenario for the HTTP surface:
// with 256 client sockets running TPC-B against the wire server, a scrape of
// /metrics mid-run returns Prometheus text carrying the block-cache, spill,
// WAL, dispatch-retry and plan-cache series, and /metrics.json parses.
func TestMetricsHTTPUnderTPCB(t *testing.T) {
	const clients = 256
	w := &workload.TPCB{Branches: 4, AccountsPerBranch: 100}
	cfg := cluster.GPDB6(2)
	cfg.GDDPeriod = 10 * time.Millisecond
	e := core.NewEngine(cfg)
	t.Cleanup(e.Close)

	ctx := context.Background()
	loader, err := e.NewSession("")
	if err != nil {
		t.Fatal(err)
	}
	if err := loader.ExecScript(ctx, w.Schema()); err != nil {
		t.Fatal(err)
	}
	if err := w.Load(ctx, coreConn{loader}); err != nil {
		t.Fatal(err)
	}
	loader.Close()

	srv := server.New(e, server.Config{Workers: clients, MetricsAddr: "127.0.0.1:0"})
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Shutdown(context.Background()) })
	if srv.MetricsAddr() == "" {
		t.Fatal("metrics endpoint did not bind")
	}
	base := "http://" + srv.MetricsAddr()

	conns := make([]*client.Client, clients)
	for i := range conns {
		c, err := client.DialTimeout(srv.Addr(), "", 10*time.Second)
		if err != nil {
			t.Fatalf("dial %d: %v", i, err)
		}
		conns[i] = c
		t.Cleanup(func() { _ = c.Close() })
	}

	// Scrape mid-run: the workload window is long enough that a GET issued
	// right after the window starts lands while sockets are in flight.
	scraped := make(chan string, 1)
	scrapeErr := make(chan error, 1)
	go func() {
		time.Sleep(50 * time.Millisecond)
		body, ct, err := httpGet(base + "/metrics")
		if err != nil {
			scrapeErr <- err
			return
		}
		if !strings.HasPrefix(ct, "text/plain") {
			scrapeErr <- fmt.Errorf("content type %q, want text/plain", ct)
			return
		}
		scraped <- body
	}()

	rs := make([]*workload.Rand, clients)
	for i := range rs {
		rs[i] = workload.NewRand(uint64(i)*104729 + 29)
	}
	res := bench.RunConcurrent(clients, 400*time.Millisecond, func(ctx context.Context, id int) error {
		return w.Transaction(ctx, client.WorkloadConn{C: conns[id]}, rs[id])
	})
	if res.Ops == 0 {
		t.Fatal("TPC-B window did nothing")
	}

	var body string
	select {
	case body = <-scraped:
	case err := <-scrapeErr:
		t.Fatalf("mid-run scrape: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatal("mid-run scrape never returned")
	}
	for _, series := range []string{
		"storage_blockcache_hits",
		"exec_spill_bytes",
		"wal_flushes",
		"dispatch_retries",
		"plancache_hits",
		"query_statements",
		"query_seconds_bucket",
	} {
		if !strings.Contains(body, series) {
			t.Errorf("/metrics misses series %s", series)
		}
	}
	// The live counters moved: the scrape saw real traffic.
	if strings.Contains(body, "\nquery_statements 0\n") {
		t.Error("query_statements still 0 mid-run")
	}

	// The JSON twin parses and carries the same registry.
	body, _, err = httpGet(base + "/metrics.json")
	if err != nil {
		t.Fatal(err)
	}
	var snap struct {
		Metrics map[string]int64 `json:"metrics"`
	}
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("metrics.json does not parse: %v", err)
	}
	if snap.Metrics["query.statements"] == 0 {
		t.Error("metrics.json query.statements = 0 after workload")
	}

	// pprof is mounted.
	if _, _, err := httpGet(base + "/debug/pprof/cmdline"); err != nil {
		t.Fatalf("pprof endpoint: %v", err)
	}
}

// TestMetricsHTTPOptIn checks the endpoint stays off unless configured.
func TestMetricsHTTPOptIn(t *testing.T) {
	e := core.NewEngine(cluster.GPDB6(2))
	t.Cleanup(e.Close)
	srv := server.New(e, server.Config{})
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Shutdown(context.Background()) })
	if addr := srv.MetricsAddr(); addr != "" {
		t.Fatalf("metrics endpoint bound to %q without opt-in", addr)
	}
}

func httpGet(url string) (body, contentType string, err error) {
	c := &http.Client{Timeout: 5 * time.Second}
	resp, err := c.Get(url)
	if err != nil {
		return "", "", err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", "", fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	return string(b), resp.Header.Get("Content-Type"), nil
}
