package server

import (
	"context"
	"errors"
	"fmt"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/fault"
	"repro/internal/lockmgr"
	"repro/internal/types"
)

// Config tunes the network front end.
type Config struct {
	// Addr is the listen address ("127.0.0.1:0" picks a free port).
	Addr string
	// MaxConns bounds concurrently connected sessions; connections past the
	// limit are refused with an error frame (default 4096).
	MaxConns int
	// Workers bounds concurrently *active transactions* across all
	// sessions — the worker pool thousands of connections multiplex onto.
	// A slot is taken when a connection's statement begins work and held
	// until its transaction ends (commit, rollback, or teardown), never
	// released mid-transaction: a session blocked on a row lock always
	// holds a slot, so the lock's holder — which also holds one — can
	// always run its COMMIT and release. Releasing between statements of
	// an open transaction would let lock holders queue behind lock
	// waiters and deadlock the pool itself. Connections whose statement
	// arrives while the pool is saturated queue until a slot frees.
	// Default 8 × GOMAXPROCS.
	Workers int
	// UseResourceGroups runs every session under its role's resource group:
	// transaction admission queues on the group's CONCURRENCY semaphore and
	// operator memory is governed by the group budget.
	UseResourceGroups bool
	// StmtTimeout caps each statement's wall time (0 = none). Sessions can
	// tighten it further with SET statement_timeout.
	StmtTimeout time.Duration
	// DrainTimeout bounds Shutdown's wait for in-flight statements before
	// cancelling them (default 5s).
	DrainTimeout time.Duration
	// MetricsAddr, when set, serves the observability HTTP endpoint
	// (Prometheus /metrics plus /debug/pprof) on the given address. Empty
	// keeps the endpoint off.
	MetricsAddr string
}

func (c Config) withDefaults() Config {
	if c.Addr == "" {
		c.Addr = "127.0.0.1:0"
	}
	if c.MaxConns <= 0 {
		c.MaxConns = 4096
	}
	if c.Workers <= 0 {
		c.Workers = 8 * runtime.GOMAXPROCS(0)
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 5 * time.Second
	}
	return c
}

// Stats is a snapshot of the server's session-layer counters.
type Stats struct {
	// Accepted counts sessions that completed startup; Rejected counts
	// connections refused (capacity, bad startup, draining).
	Accepted, Rejected int64
	// Active is the current session count.
	Active int
	// Statements counts executed statements; Queued counts statements that
	// had to wait for a worker-pool slot.
	Statements, Queued int64
	// Canceled counts statements aborted by connection loss or shutdown.
	Canceled int64
}

// Server is the TCP front end over one embedded engine.
type Server struct {
	cfg    Config
	engine *core.Engine
	ln     net.Listener

	// Opt-in observability endpoint (Config.MetricsAddr).
	httpLn  net.Listener
	httpSrv *httpServer

	// workers is the bounded statement-execution pool (semaphore).
	workers chan struct{}

	mu       sync.Mutex
	conns    map[*conn]struct{}
	nextID   uint64
	draining bool
	closed   bool

	wg sync.WaitGroup

	accepted   atomic.Int64
	rejected   atomic.Int64
	statements atomic.Int64
	queued     atomic.Int64
	canceled   atomic.Int64
}

// New builds a server over an engine. Start actually listens.
func New(e *core.Engine, cfg Config) *Server {
	cfg = cfg.withDefaults()
	return &Server{
		cfg:     cfg,
		engine:  e,
		workers: make(chan struct{}, cfg.Workers),
		conns:   make(map[*conn]struct{}),
	}
}

// Start binds the listen address (and, when configured, the observability
// endpoint) and begins accepting sessions.
func (s *Server) Start() error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	if err := s.startMetricsHTTP(); err != nil {
		_ = ln.Close()
		return err
	}
	s.ln = ln
	s.wg.Add(1)
	go s.acceptLoop()
	return nil
}

// Addr returns the bound listen address (valid after Start).
func (s *Server) Addr() string {
	if s.ln == nil {
		return s.cfg.Addr
	}
	return s.ln.Addr().String()
}

// Stats snapshots the session-layer counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	active := len(s.conns)
	s.mu.Unlock()
	return Stats{
		Accepted:   s.accepted.Load(),
		Rejected:   s.rejected.Load(),
		Active:     active,
		Statements: s.statements.Load(),
		Queued:     s.queued.Load(),
		Canceled:   s.canceled.Load(),
	}
}

// SessionCount returns the number of live sessions (tests assert it drops
// to zero after churn).
func (s *Server) SessionCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.conns)
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		nc, err := s.ln.Accept()
		if err != nil {
			return // listener closed (shutdown)
		}
		s.mu.Lock()
		over := s.draining || s.closed || len(s.conns) >= s.cfg.MaxConns
		s.mu.Unlock()
		if over {
			s.rejected.Add(1)
			_ = WriteFrame(nc, MsgError, (&ErrorMsg{Message: "server: connection refused (at capacity or draining)"}).Encode())
			_ = nc.Close()
			continue
		}
		s.wg.Add(1)
		go s.handleConn(nc)
	}
}

// Shutdown drains gracefully: stop accepting, let in-flight statements
// finish (up to DrainTimeout or ctx, whichever ends first), cancel
// stragglers, close every connection, and flush the WAL so everything
// acknowledged is durable. Idempotent.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.draining = true
	conns := make([]*conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()

	if s.ln != nil {
		_ = s.ln.Close()
	}
	if s.httpSrv != nil {
		_ = s.httpSrv.Close() // drops scrapes in flight; metrics are stateless
	}
	// Idle sessions can go immediately; busy ones get the drain window to
	// finish their in-flight statement (the conn loop closes after it).
	for _, c := range conns {
		if !c.inflight.Load() {
			c.hangup()
		}
	}

	deadline := time.Now().Add(s.cfg.DrainTimeout)
	if d, ok := ctx.Deadline(); ok && d.Before(deadline) {
		deadline = d
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(time.Until(deadline)):
		// Drain window over: cancel in-flight statements and drop sockets.
		s.mu.Lock()
		for c := range s.conns {
			c.cancel(errServerShutdown)
			c.hangup()
		}
		s.mu.Unlock()
		<-done
	}

	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	// Everything acknowledged before the drain is group-commit flushed
	// durable (and applied on mirrors under sync replication).
	s.engine.Cluster().FlushWAL()
	return nil
}

var errServerShutdown = errors.New("server: shutting down")

// conn is one client session.
type conn struct {
	id  uint64
	srv *Server
	nc  net.Conn

	sess     *core.Session
	prepared map[string]*core.Prepared
	// portal is the bound (statement, params) pair awaiting MsgExecute.
	portal *portal

	// inflight marks a statement executing right now (drain decisions).
	inflight atomic.Bool
	// hasSlot marks a held worker-pool slot; owned by the executor
	// goroutine, held across statements while a transaction is open.
	hasSlot bool
	// cctx is cancelled when the socket dies or the server force-drains;
	// every statement executes under it.
	cctx   context.Context
	cancel context.CancelCauseFunc

	writeMu sync.Mutex
}

type portal struct {
	prep   *core.Prepared
	params []types.Datum
}

// hangup force-closes the socket (reader unblocks, conn tears down).
func (c *conn) hangup() { _ = c.nc.Close() }

// send writes one frame (the conn loop is the only writer during normal
// operation; the mutex covers the error frame a rejected drain might race).
func (c *conn) send(typ byte, payload []byte) error {
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	return WriteFrame(c.nc, typ, payload)
}

func (c *conn) sendErr(err error) error {
	return c.send(MsgError, (&ErrorMsg{Message: err.Error(), Code: errorCode(err)}).Encode())
}

// errorCode classifies a statement error into its wire code. Order matters:
// the typed sentinels are checked before the broader dispatch-shape matches.
func errorCode(err error) string {
	switch {
	case errors.Is(err, exec.ErrDiskFull):
		return CodeDiskFull
	case errors.Is(err, lockmgr.ErrDeadlockVictim):
		return CodeDeadlock
	case errors.Is(err, core.ErrTxnAborted):
		return CodeTxnAborted
	case errors.Is(err, cluster.ErrTxnLostWrites):
		return CodeLostWrites
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return CodeCanceled
	case cluster.IsRetryableDispatch(err), cluster.IsSegmentDown(err):
		return CodeRetryable
	}
	var de *cluster.DispatchError
	if errors.As(err, &de) {
		// Post-send dispatch failure (the pre-send case matched above): the
		// operation may have executed on the segment.
		return CodeAmbiguous
	}
	return CodeInternal
}

func (c *conn) sendReady() error {
	return c.send(MsgReady, (&Ready{Status: c.sess.TxnStatus()}).Encode())
}

// handleConn runs one session: startup handshake, then the frame loop.
func (s *Server) handleConn(nc net.Conn) {
	defer s.wg.Done()
	// Startup must arrive promptly; a silent socket cannot hold a slot.
	_ = nc.SetReadDeadline(time.Now().Add(10 * time.Second))
	typ, payload, err := ReadFrame(nc)
	if err != nil || typ != MsgStartup {
		s.rejected.Add(1)
		_ = WriteFrame(nc, MsgError, (&ErrorMsg{Message: "server: expected startup frame"}).Encode())
		_ = nc.Close()
		return
	}
	st, err := DecodeStartup(payload)
	if err != nil || st.Version != ProtocolVersion {
		s.rejected.Add(1)
		_ = WriteFrame(nc, MsgError, (&ErrorMsg{Message: fmt.Sprintf("server: bad startup (want protocol %d)", ProtocolVersion)}).Encode())
		_ = nc.Close()
		return
	}
	sess, err := s.engine.NewSession(st.Role)
	if err != nil {
		s.rejected.Add(1)
		_ = WriteFrame(nc, MsgError, (&ErrorMsg{Message: err.Error()}).Encode())
		_ = nc.Close()
		return
	}
	_ = nc.SetReadDeadline(time.Time{})
	if s.cfg.UseResourceGroups {
		sess.UseResourceGroup(true, 0, 0)
	}

	cctx, cancel := context.WithCancelCause(context.Background())
	c := &conn{
		srv:      s,
		nc:       nc,
		sess:     sess,
		prepared: make(map[string]*core.Prepared),
		cctx:     cctx,
		cancel:   cancel,
	}
	s.mu.Lock()
	if s.draining || s.closed {
		s.mu.Unlock()
		s.rejected.Add(1)
		_ = c.sendErr(errServerShutdown)
		_ = nc.Close()
		sess.Close()
		return
	}
	s.nextID++
	c.id = s.nextID
	s.conns[c] = struct{}{}
	s.mu.Unlock()
	s.accepted.Add(1)

	// Session teardown is unconditional: whatever killed the connection —
	// clean terminate, abrupt socket close mid-transaction, drain — the
	// open transaction rolls back and the resource-group slot frees.
	defer func() {
		cancel(nil)
		// The session_teardown fault point may delay (sleep/hang) or fail
		// here, but the rollback and slot release below run regardless — an
		// injected teardown failure must never leak a session or its locks.
		_, _ = s.engine.Cluster().Faults().Eval(fault.SessionTeardown, cluster.CoordinatorSeg)
		sess.Close()
		_ = nc.Close()
		if c.hasSlot {
			c.hasSlot = false
			<-s.workers
		}
		s.mu.Lock()
		delete(s.conns, c)
		s.mu.Unlock()
	}()

	if err := c.send(MsgAuthOK, (&AuthOK{SessionID: c.id}).Encode()); err != nil {
		return
	}
	if err := c.sendReady(); err != nil {
		return
	}

	// The reader goroutine owns the socket's read side: frames flow to the
	// session loop over a small channel (modest pipelining), and a read
	// error — the client vanished — cancels the in-flight statement.
	type frame struct {
		typ     byte
		payload []byte
	}
	frames := make(chan frame, 8)
	go func() {
		defer close(frames)
		for {
			typ, payload, err := ReadFrame(nc)
			if err != nil {
				cancel(err)
				return
			}
			select {
			case frames <- frame{typ, payload}:
			case <-cctx.Done():
				return
			}
		}
	}()

	for fr := range frames {
		if !c.dispatch(fr.typ, fr.payload) {
			return
		}
		s.mu.Lock()
		draining := s.draining
		s.mu.Unlock()
		if draining {
			// Statement finished and its Ready went out: drain closes the
			// session at the statement boundary.
			return
		}
	}
}

// dispatch handles one frame; false ends the session.
func (c *conn) dispatch(typ byte, payload []byte) bool {
	switch typ {
	case MsgTerminate:
		return false

	case MsgQuery:
		q, err := DecodeQuery(payload)
		if err != nil {
			return c.protoErr(err)
		}
		c.runStatement(func(ctx context.Context) (*core.Result, error) {
			return c.sess.Exec(ctx, q.SQL, q.Params...)
		})
		return true

	case MsgParse:
		p, err := DecodeParse(payload)
		if err != nil {
			return c.protoErr(err)
		}
		prep, err := c.sess.Prepare(p.SQL)
		if err != nil {
			_ = c.sendErr(err)
			_ = c.sendReady()
			return true
		}
		c.prepared[p.Name] = prep
		_ = c.send(MsgParseOK, nil)
		return true

	case MsgBind:
		b, err := DecodeBind(payload)
		if err != nil {
			return c.protoErr(err)
		}
		prep, ok := c.prepared[b.Name]
		if !ok {
			_ = c.sendErr(fmt.Errorf("server: prepared statement %q does not exist", b.Name))
			_ = c.sendReady()
			return true
		}
		c.portal = &portal{prep: prep, params: b.Params}
		_ = c.send(MsgBindOK, nil)
		return true

	case MsgExecute:
		p := c.portal
		if p == nil {
			_ = c.sendErr(errors.New("server: no portal bound"))
			_ = c.sendReady()
			return true
		}
		c.runStatement(func(ctx context.Context) (*core.Result, error) {
			return c.sess.ExecPrepared(ctx, p.prep, p.params...)
		})
		return true

	case MsgCloseStmt:
		m, err := DecodeCloseStmt(payload)
		if err != nil {
			return c.protoErr(err)
		}
		delete(c.prepared, m.Name)
		_ = c.send(MsgParseOK, nil)
		return true

	default:
		return c.protoErr(fmt.Errorf("server: unexpected frame type %q", typ))
	}
}

// protoErr reports a malformed frame and drops the connection (framing is
// no longer trustworthy).
func (c *conn) protoErr(err error) bool {
	_ = c.sendErr(fmt.Errorf("protocol error: %w", err))
	return false
}

// runStatement admits the statement to the worker pool, executes it under
// the connection context (plus the server statement timeout), and streams
// the result. Errors are sent as error frames; the session stays usable.
func (c *conn) runStatement(run func(context.Context) (*core.Result, error)) {
	s := c.srv
	// Admission to the bounded executor pool: fast path, else queue. The
	// slot is per-transaction — once held it stays held until the session
	// returns to idle, so a transaction that already owns locks can never
	// be starved of the pool by other sessions waiting on those locks.
	if !c.hasSlot {
		select {
		case s.workers <- struct{}{}:
		default:
			s.queued.Add(1)
			select {
			case s.workers <- struct{}{}:
			case <-c.cctx.Done():
				s.canceled.Add(1)
				return
			}
		}
		c.hasSlot = true
	}
	defer func() {
		if c.hasSlot && c.sess.TxnStatus() == 'I' {
			c.hasSlot = false
			<-s.workers
		}
	}()

	ctx := c.cctx
	if s.cfg.StmtTimeout > 0 {
		tctx, tcancel := context.WithTimeout(ctx, s.cfg.StmtTimeout)
		defer tcancel()
		ctx = tctx
	}
	c.inflight.Store(true)
	res, err := run(ctx)
	c.inflight.Store(false)
	s.statements.Add(1)
	if err != nil {
		if c.cctx.Err() != nil {
			// The connection died mid-statement; nobody is listening.
			s.canceled.Add(1)
			return
		}
		_ = c.sendErr(err)
		_ = c.sendReady()
		return
	}
	if len(res.Columns) > 0 {
		desc := &RowDesc{Cols: make([]ColDesc, len(res.Columns))}
		for i, name := range res.Columns {
			desc.Cols[i] = ColDesc{Name: name}
			if len(res.Rows) > 0 && i < len(res.Rows[0]) {
				desc.Cols[i].Kind = res.Rows[0][i].Kind()
			}
		}
		if c.send(MsgRowDesc, desc.Encode()) != nil {
			return
		}
		for _, row := range res.Rows {
			if c.send(MsgDataRow, (&DataRow{Row: row}).Encode()) != nil {
				return
			}
		}
	}
	if c.send(MsgComplete, (&Complete{Tag: res.Tag, RowsAffected: int64(res.RowsAffected)}).Encode()) != nil {
		return
	}
	_ = c.sendReady()
}
