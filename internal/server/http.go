package server

import (
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// httpServer keeps server.go free of a net/http import.
type httpServer = http.Server

// startMetricsHTTP binds the opt-in observability listener: Prometheus text
// exposition at /metrics and the standard Go profiling handlers under
// /debug/pprof/. The endpoint is off unless Config.MetricsAddr is set — an
// embedded analytics database must not open surprise ports.
func (s *Server) startMetricsHTTP() error {
	if s.cfg.MetricsAddr == "" {
		return nil
	}
	ln, err := net.Listen("tcp", s.cfg.MetricsAddr)
	if err != nil {
		return err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		_ = s.engine.Metrics().WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = s.engine.Metrics().WriteJSON(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.httpLn = ln
	s.httpSrv = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		_ = s.httpSrv.Serve(ln) // returns on Close
	}()
	return nil
}

// MetricsAddr returns the bound observability address ("" when disabled).
func (s *Server) MetricsAddr() string {
	if s.httpLn == nil {
		return ""
	}
	return s.httpLn.Addr().String()
}
