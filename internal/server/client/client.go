// Package client is the Go driver for the repro wire protocol: it dials a
// server, runs the startup handshake, and exposes simple-query and
// parse/bind/execute statement execution. It is what the network tests,
// gpshell -connect, and the network TPC-B bench speak through.
//
// Error taxonomy matters to callers running chaos tests: a *ServerError is
// a definitive statement failure reported by the server (the transaction is
// aborted server-side, the connection stays usable), while any other error
// is a transport failure — the statement's fate is ambiguous (it may or may
// not have committed before the socket died) and the connection is dead.
package client

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/server"
	"repro/internal/types"
)

// ServerError is a statement error reported by the server over the wire.
// The session survives it; the current transaction (if any) is failed and
// must be rolled back, mirroring the in-process session contract. Code is
// the server's machine-readable classification (server.Code* constants) —
// use it, or the Retryable/AmbiguousFate helpers, instead of matching
// Message text.
type ServerError struct {
	Message string
	Code    string
}

func (e *ServerError) Error() string {
	if e.Code != "" {
		return e.Message + " (SQLSTATE " + e.Code + ")"
	}
	return e.Message
}

// Retryable reports whether the statement is safe to re-issue as-is: the
// server guarantees it did not take effect (breaker open / segment
// mid-failover before send, deadlock victim, lost-writes abort — the
// transaction rolled back whole).
func (e *ServerError) Retryable() bool {
	switch e.Code {
	case server.CodeRetryable, server.CodeDeadlock, server.CodeLostWrites:
		return true
	}
	return false
}

// AmbiguousFate reports whether the statement may have taken effect even
// though it errored: a dispatch failure after the operation reached a
// segment, or a cancel/timeout that raced the commit. Callers must
// reconcile state before retrying non-idempotent work.
func (e *ServerError) AmbiguousFate() bool {
	switch e.Code {
	case server.CodeAmbiguous, server.CodeCanceled:
		return true
	}
	return false
}

// Retryable classifies any error from this package: a *ServerError is
// retryable per its code; transport errors are never blindly retryable
// (the in-flight statement's fate is unknown — see AmbiguousFate).
func Retryable(err error) bool {
	var se *ServerError
	return errors.As(err, &se) && se.Retryable()
}

// AmbiguousFate reports whether err leaves the statement's fate unknown.
// Every transport error is ambiguous: the socket died with a statement
// possibly in flight. Server-reported errors are ambiguous only when their
// code says so.
func AmbiguousFate(err error) bool {
	if err == nil {
		return false
	}
	var se *ServerError
	if errors.As(err, &se) {
		return se.AmbiguousFate()
	}
	return true
}

// Result is one statement's outcome.
type Result struct {
	Columns      []string
	Rows         []types.Row
	RowsAffected int64
	Tag          string
	// TxnStatus is the server's post-statement transaction state:
	// 'I' idle, 'T' in transaction, 'F' failed transaction.
	TxnStatus byte
}

// Client is one connection to a server. It is safe for use by one
// goroutine at a time (like database/sql's driver.Conn, not sql.DB).
type Client struct {
	mu        sync.Mutex
	nc        net.Conn
	sessionID uint64
	closed    bool
}

// Dial connects, runs the startup handshake as role, and returns a live
// client. An empty role connects as the admin default.
func Dial(addr, role string) (*Client, error) {
	return DialTimeout(addr, role, 10*time.Second)
}

// DialTimeout is Dial with a connect/handshake deadline.
func DialTimeout(addr, role string, timeout time.Duration) (*Client, error) {
	nc, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	_ = nc.SetDeadline(time.Now().Add(timeout))
	st := &server.Startup{Version: server.ProtocolVersion, Role: role}
	if err := server.WriteFrame(nc, server.MsgStartup, st.Encode()); err != nil {
		_ = nc.Close()
		return nil, err
	}
	c := &Client{nc: nc}
	// Expect AuthOK then Ready; an error frame here means we were refused.
	typ, payload, err := server.ReadFrame(nc)
	if err != nil {
		_ = nc.Close()
		return nil, err
	}
	switch typ {
	case server.MsgAuthOK:
		ok, err := server.DecodeAuthOK(payload)
		if err != nil {
			_ = nc.Close()
			return nil, err
		}
		c.sessionID = ok.SessionID
	case server.MsgError:
		em, _ := server.DecodeErrorMsg(payload)
		_ = nc.Close()
		return nil, &ServerError{Message: em.Message, Code: em.Code}
	default:
		_ = nc.Close()
		return nil, fmt.Errorf("client: unexpected frame %q during handshake", typ)
	}
	if _, err := c.readUntilReady(nil); err != nil {
		_ = nc.Close()
		return nil, err
	}
	_ = nc.SetDeadline(time.Time{})
	return c, nil
}

// SessionID is the server-assigned session identifier.
func (c *Client) SessionID() uint64 { return c.sessionID }

// Close terminates the session politely and closes the socket.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	_ = server.WriteFrame(c.nc, server.MsgTerminate, nil)
	return c.nc.Close()
}

// Kill drops the socket without a terminate frame — the abrupt-disconnect
// path the churn chaos test exercises.
func (c *Client) Kill() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	return c.nc.Close()
}

// Exec runs one statement through the simple-query path.
func (c *Client) Exec(ctx context.Context, sqlText string, params ...types.Datum) (*Result, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, fmt.Errorf("client: connection closed")
	}
	q := &server.Query{SQL: sqlText, Params: params}
	if err := c.write(ctx, server.MsgQuery, q.Encode()); err != nil {
		return nil, err
	}
	return c.readUntilReady(ctx)
}

// Stmt is a named server-side prepared statement.
type Stmt struct {
	c    *Client
	name string
}

// Prepare parses sqlText server-side under the given name.
func (c *Client) Prepare(name, sqlText string) (*Stmt, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	p := &server.Parse{Name: name, SQL: sqlText}
	if err := c.write(nil, server.MsgParse, p.Encode()); err != nil {
		return nil, err
	}
	typ, payload, err := server.ReadFrame(c.nc)
	if err != nil {
		return nil, err
	}
	switch typ {
	case server.MsgParseOK:
		return &Stmt{c: c, name: name}, nil
	case server.MsgError:
		em, _ := server.DecodeErrorMsg(payload)
		// The server follows a parse error with Ready; consume it.
		if _, rerr := c.readUntilReady(nil); rerr != nil {
			return nil, rerr
		}
		return nil, &ServerError{Message: em.Message, Code: em.Code}
	default:
		return nil, fmt.Errorf("client: unexpected frame %q after parse", typ)
	}
}

// Exec binds params to the prepared statement and executes it.
func (s *Stmt) Exec(ctx context.Context, params ...types.Datum) (*Result, error) {
	c := s.c
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, fmt.Errorf("client: connection closed")
	}
	b := &server.Bind{Name: s.name, Params: params}
	if err := c.write(ctx, server.MsgBind, b.Encode()); err != nil {
		return nil, err
	}
	typ, payload, err := server.ReadFrame(c.nc)
	if err != nil {
		return nil, err
	}
	switch typ {
	case server.MsgBindOK:
	case server.MsgError:
		em, _ := server.DecodeErrorMsg(payload)
		if _, rerr := c.readUntilReady(ctx); rerr != nil {
			return nil, rerr
		}
		return nil, &ServerError{Message: em.Message, Code: em.Code}
	default:
		return nil, fmt.Errorf("client: unexpected frame %q after bind", typ)
	}
	if err := c.write(ctx, server.MsgExecute, nil); err != nil {
		return nil, err
	}
	return c.readUntilReady(ctx)
}

// Close deallocates the prepared statement server-side.
func (s *Stmt) Close() error {
	c := s.c
	c.mu.Lock()
	defer c.mu.Unlock()
	m := &server.CloseStmt{Name: s.name}
	if err := c.write(nil, server.MsgCloseStmt, m.Encode()); err != nil {
		return err
	}
	typ, _, err := server.ReadFrame(c.nc)
	if err != nil {
		return err
	}
	if typ != server.MsgParseOK {
		return fmt.Errorf("client: unexpected frame %q after close", typ)
	}
	return nil
}

// write sends one frame, honouring a context deadline if present.
func (c *Client) write(ctx context.Context, typ byte, payload []byte) error {
	if ctx != nil {
		if d, ok := ctx.Deadline(); ok {
			_ = c.nc.SetWriteDeadline(d)
			defer c.nc.SetWriteDeadline(time.Time{})
		}
	}
	return server.WriteFrame(c.nc, typ, payload)
}

// readUntilReady consumes one statement's response stream: optional row
// description, data rows, a completion or error, then Ready.
func (c *Client) readUntilReady(ctx context.Context) (*Result, error) {
	if ctx != nil {
		if d, ok := ctx.Deadline(); ok {
			_ = c.nc.SetReadDeadline(d)
			defer c.nc.SetReadDeadline(time.Time{})
		}
	}
	res := &Result{}
	var srvErr *ServerError
	for {
		typ, payload, err := server.ReadFrame(c.nc)
		if err != nil {
			return nil, err
		}
		switch typ {
		case server.MsgRowDesc:
			rd, err := server.DecodeRowDesc(payload)
			if err != nil {
				return nil, err
			}
			res.Columns = res.Columns[:0]
			for _, col := range rd.Cols {
				res.Columns = append(res.Columns, col.Name)
			}
		case server.MsgDataRow:
			dr, err := server.DecodeDataRow(payload)
			if err != nil {
				return nil, err
			}
			res.Rows = append(res.Rows, dr.Row)
		case server.MsgComplete:
			cm, err := server.DecodeComplete(payload)
			if err != nil {
				return nil, err
			}
			res.Tag = cm.Tag
			res.RowsAffected = cm.RowsAffected
		case server.MsgError:
			em, err := server.DecodeErrorMsg(payload)
			if err != nil {
				return nil, err
			}
			srvErr = &ServerError{Message: em.Message, Code: em.Code}
		case server.MsgReady:
			rd, err := server.DecodeReady(payload)
			if err != nil {
				return nil, err
			}
			res.TxnStatus = rd.Status
			if srvErr != nil {
				return nil, srvErr
			}
			return res, nil
		default:
			return nil, fmt.Errorf("client: unexpected frame %q in response", typ)
		}
	}
}

// WorkloadConn adapts a Client to workload.Conn so the TPC-B/CH-bench
// drivers run unchanged over the network.
type WorkloadConn struct {
	C *Client
}

// Exec implements workload.Conn.
func (w WorkloadConn) Exec(ctx context.Context, sqlText string, args ...types.Datum) (int, []types.Row, error) {
	res, err := w.C.Exec(ctx, sqlText, args...)
	if err != nil {
		return 0, nil, err
	}
	return int(res.RowsAffected), res.Rows, nil
}
