package server_test

import (
	"context"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/server"
	"repro/internal/server/client"
	"repro/internal/workload"
)

// BenchmarkNetworkTPCB is the acceptance gate for the session layer: 256
// concurrent sockets running TPC-B through the wire protocol must sustain
// at least 0.6× the throughput of the same client count driving sessions
// in-process, with a >90% parse-cache hit rate on the repeated statement
// texts. Each b.N iteration measures one fixed window of both paths and
// reports tps-net, tps-inproc, the ratio, and the hit rate.
func BenchmarkNetworkTPCB(b *testing.B) {
	const clients = 256
	window := 500 * time.Millisecond

	w := &workload.TPCB{Branches: 8, AccountsPerBranch: 100}
	cfg := cluster.GPDB6(2)
	// The experiments' cost model: visible per-statement network/fsync/CPU
	// costs, so the comparison measures the wire-protocol tax against a
	// realistically priced statement, not against a no-op.
	cfg.NetDelay = 500 * time.Microsecond
	cfg.FsyncDelay = 2 * time.Millisecond
	cfg.SegmentStmtCPU = time.Millisecond
	cfg.SegmentWorkers = 4
	cfg.GDDPeriod = 10 * time.Millisecond
	e := core.NewEngine(cfg)
	defer e.Close()

	ctx := context.Background()
	loader, err := e.NewSession("")
	if err != nil {
		b.Fatal(err)
	}
	if err := loader.ExecScript(ctx, w.Schema()); err != nil {
		b.Fatal(err)
	}
	if err := w.Load(ctx, coreConn{loader}); err != nil {
		b.Fatal(err)
	}
	loader.Close()

	// Workers = clients: this benchmark isolates the wire tax, so the pool
	// must not throttle the network path below the in-process harness
	// (which has no admission at all).
	srv := server.New(e, server.Config{Workers: clients})
	if err := srv.Start(); err != nil {
		b.Fatal(err)
	}
	defer srv.Shutdown(context.Background())

	// In-process workers: one long-lived session each.
	sessions := make([]*core.Session, clients)
	for i := range sessions {
		s, err := e.NewSession("")
		if err != nil {
			b.Fatal(err)
		}
		sessions[i] = s
	}
	// Network workers: one long-lived socket each.
	conns := make([]*client.Client, clients)
	for i := range conns {
		c, err := client.DialTimeout(srv.Addr(), "", 10*time.Second)
		if err != nil {
			b.Fatalf("dial %d: %v", i, err)
		}
		conns[i] = c
		defer c.Close()
	}
	rands := func() []*workload.Rand {
		rs := make([]*workload.Rand, clients)
		for i := range rs {
			rs[i] = workload.NewRand(uint64(i)*104729 + 7)
		}
		return rs
	}

	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		ri := rands()
		inproc := bench.RunConcurrent(clients, window, func(ctx context.Context, id int) error {
			return w.Transaction(ctx, bench.SessionConn{S: sessions[id]}, ri[id])
		})
		before := e.StmtCache().Stats()
		rn := rands()
		net := bench.RunConcurrent(clients, window, func(ctx context.Context, id int) error {
			return w.Transaction(ctx, client.WorkloadConn{C: conns[id]}, rn[id])
		})
		after := e.StmtCache().Stats()

		ratio := 0.0
		if inproc.TPS() > 0 {
			ratio = net.TPS() / inproc.TPS()
		}
		hitRate := 0.0
		if lookups := (after.Hits - before.Hits) + (after.Misses - before.Misses); lookups > 0 {
			hitRate = float64(after.Hits-before.Hits) / float64(lookups)
		}
		b.ReportMetric(net.TPS(), "tps-net")
		b.ReportMetric(inproc.TPS(), "tps-inproc")
		b.ReportMetric(ratio, "net/inproc")
		b.ReportMetric(hitRate*100, "cache-hit-%")
		if ratio < 0.6 {
			b.Errorf("network throughput %.0f TPS is %.2fx of in-process %.0f TPS (gate: 0.6x)",
				net.TPS(), ratio, inproc.TPS())
		}
		if hitRate < 0.9 {
			b.Errorf("parse-cache hit rate %.1f%% under repeated statements (gate: 90%%)", hitRate*100)
		}
	}
}
