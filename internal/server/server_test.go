package server_test

import (
	"context"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/server"
	"repro/internal/server/client"
	"repro/internal/types"
)

// startServer boots an engine plus a listening server on a loopback port.
func startServer(t testing.TB, nseg int, cfg server.Config) (*core.Engine, *server.Server) {
	t.Helper()
	ccfg := cluster.GPDB6(nseg)
	ccfg.GDDPeriod = 5 * time.Millisecond
	e := core.NewEngine(ccfg)
	t.Cleanup(e.Close)
	srv := server.New(e, cfg)
	if err := srv.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	})
	return e, srv
}

func dialT(t testing.TB, srv *server.Server) *client.Client {
	t.Helper()
	c, err := client.Dial(srv.Addr(), "")
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	return c
}

func mustExecNet(t testing.TB, c *client.Client, sqlText string, params ...types.Datum) *client.Result {
	t.Helper()
	res, err := c.Exec(context.Background(), sqlText, params...)
	if err != nil {
		t.Fatalf("Exec(%q): %v", sqlText, err)
	}
	return res
}

func TestNetworkBasicFlow(t *testing.T) {
	_, srv := startServer(t, 2, server.Config{})
	c := dialT(t, srv)
	defer c.Close()
	ctx := context.Background()

	mustExecNet(t, c, "CREATE TABLE t (a int, b text, c float, d bool, e date) DISTRIBUTED BY (a)")
	res := mustExecNet(t, c, "INSERT INTO t VALUES (1, 'one', 1.5, true, '2021-06-15'), (2, 'two', -2.25, false, '1999-12-31')")
	if res.RowsAffected != 2 || !strings.HasPrefix(res.Tag, "INSERT") {
		t.Fatalf("insert: tag=%q affected=%d", res.Tag, res.RowsAffected)
	}
	res = mustExecNet(t, c, "SELECT a, b, c, d, e FROM t ORDER BY a")
	if len(res.Rows) != 2 || len(res.Columns) != 5 {
		t.Fatalf("select: %d rows %d cols", len(res.Rows), len(res.Columns))
	}
	if res.Rows[0][1].String() != "one" || res.Rows[1][2].Float() != -2.25 {
		t.Fatalf("bad row values: %v", res.Rows)
	}
	if res.Rows[0][4].Kind() != types.KindDate || res.Rows[0][4].String() != "2021-06-15" {
		t.Fatalf("date did not survive the wire: %v (%v)", res.Rows[0][4], res.Rows[0][4].Kind())
	}
	if res.TxnStatus != 'I' {
		t.Fatalf("status %q, want I", res.TxnStatus)
	}

	// Parameters through the simple-query path.
	res = mustExecNet(t, c, "SELECT b FROM t WHERE a = $1", types.NewInt(2))
	if len(res.Rows) != 1 || res.Rows[0][0].String() != "two" {
		t.Fatalf("param query: %v", res.Rows)
	}

	// A statement error comes back as *ServerError and the session survives.
	_, err := c.Exec(ctx, "SELECT nope FROM t")
	if err == nil {
		t.Fatal("bad column accepted")
	}
	if _, ok := err.(*client.ServerError); !ok {
		t.Fatalf("want *ServerError, got %T: %v", err, err)
	}
	res = mustExecNet(t, c, "SELECT count(*) FROM t")
	if res.Rows[0][0].Int() != 2 {
		t.Fatalf("session unusable after error: %v", res.Rows)
	}
}

func TestNetworkTxnStatusAndRollback(t *testing.T) {
	_, srv := startServer(t, 2, server.Config{})
	c := dialT(t, srv)
	defer c.Close()
	ctx := context.Background()

	mustExecNet(t, c, "CREATE TABLE acc (id int, v int) DISTRIBUTED BY (id)")
	mustExecNet(t, c, "INSERT INTO acc VALUES (1, 100)")

	if res := mustExecNet(t, c, "BEGIN"); res.TxnStatus != 'T' {
		t.Fatalf("after BEGIN: %q", res.TxnStatus)
	}
	mustExecNet(t, c, "UPDATE acc SET v = 0 WHERE id = 1")
	// An error inside the block fails the transaction...
	if _, err := c.Exec(ctx, "SELECT broken FROM acc"); err == nil {
		t.Fatal("expected error")
	}
	// ...and the failure is sticky until ROLLBACK.
	_, err := c.Exec(ctx, "SELECT v FROM acc")
	if err == nil || !strings.Contains(err.Error(), "abort") {
		t.Fatalf("statement in failed txn: %v", err)
	}
	if res := mustExecNet(t, c, "ROLLBACK"); res.TxnStatus != 'I' {
		t.Fatalf("after ROLLBACK: %q", res.TxnStatus)
	}
	if res := mustExecNet(t, c, "SELECT v FROM acc WHERE id = 1"); res.Rows[0][0].Int() != 100 {
		t.Fatalf("update not rolled back: %v", res.Rows)
	}
}

func TestNetworkPreparedStatements(t *testing.T) {
	e, srv := startServer(t, 2, server.Config{})
	c := dialT(t, srv)
	defer c.Close()
	ctx := context.Background()

	mustExecNet(t, c, "CREATE TABLE p (a int, b int) DISTRIBUTED BY (a)")
	ins, err := c.Prepare("ins", "INSERT INTO p VALUES ($1, $2)")
	if err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	for i := 1; i <= 10; i++ {
		if _, err := ins.Exec(ctx, types.NewInt(int64(i)), types.NewInt(int64(i*i))); err != nil {
			t.Fatalf("exec prepared %d: %v", i, err)
		}
	}
	sel, err := c.Prepare("sel", "SELECT b FROM p WHERE a = $1")
	if err != nil {
		t.Fatalf("Prepare sel: %v", err)
	}
	res, err := sel.Exec(ctx, types.NewInt(7))
	if err != nil || len(res.Rows) != 1 || res.Rows[0][0].Int() != 49 {
		t.Fatalf("prepared select: %v %v", res, err)
	}
	// Prepared statements parse once: only the three distinct texts above
	// ever hit the parser, no matter how many executions ran.
	st := e.StmtCache().Stats()
	if st.Misses != 3 {
		t.Fatalf("prepared executions re-parsed: %+v", st)
	}
	if err := sel.Close(); err != nil {
		t.Fatalf("Close stmt: %v", err)
	}
	if _, err := sel.Exec(ctx, types.NewInt(1)); err == nil {
		t.Fatal("closed statement still executable")
	}
	// Parse errors surface as ServerError and leave the session usable.
	if _, err := c.Prepare("bad", "SELEKT 1"); err == nil {
		t.Fatal("bad SQL prepared")
	}
	mustExecNet(t, c, "SELECT count(*) FROM p")
}

// TestNetworkMatchesInProcess is the byte-identity satellite: the same
// query through the wire and through an embedded session must produce
// identical results, across storage engines and parallelism degrees.
func TestNetworkMatchesInProcess(t *testing.T) {
	e, srv := startServer(t, 2, server.Config{})
	c := dialT(t, srv)
	defer c.Close()
	ctx := context.Background()

	local, err := e.NewSession("")
	if err != nil {
		t.Fatal(err)
	}

	storages := []struct{ name, with string }{
		{"heap", ""},
		{"aorow", " WITH (appendonly=true)"},
		{"aocol", " WITH (appendonly=true, orientation=column)"},
	}
	for _, st := range storages {
		tbl := "m_" + st.name
		mustExecNet(t, c, fmt.Sprintf(
			"CREATE TABLE %s (a int, b text, c float, d bool, e date) DISTRIBUTED BY (a)%s", tbl, st.with))
		for i := 0; i < 40; i++ {
			mustExecNet(t, c, fmt.Sprintf(
				"INSERT INTO %s VALUES (%d, 'r%d', %d.25, %t, '2020-01-01')", tbl, i, i%7, i, i%3 == 0))
		}
	}
	queries := []string{
		"SELECT a, b, c, d, e FROM %s ORDER BY a",
		"SELECT b, count(*), sum(c) FROM %s GROUP BY b ORDER BY b",
		"SELECT count(*) FROM %s WHERE d = true",
		"SELECT a, c FROM %s WHERE a >= 10 AND a < 30 ORDER BY c DESC, a",
	}
	for _, st := range storages {
		for _, dop := range []int{1, 4} {
			setPar := fmt.Sprintf("SET exec_parallelism = %d", dop)
			mustExecNet(t, c, setPar)
			if _, err := local.Exec(ctx, setPar); err != nil {
				t.Fatal(err)
			}
			for _, q := range queries {
				q := fmt.Sprintf(q, "m_"+st.name)
				netRes, err := c.Exec(ctx, q)
				if err != nil {
					t.Fatalf("[%s dop=%d] net %q: %v", st.name, dop, q, err)
				}
				locRes, err := local.Exec(ctx, q)
				if err != nil {
					t.Fatalf("[%s dop=%d] local %q: %v", st.name, dop, q, err)
				}
				if len(netRes.Rows) != len(locRes.Rows) {
					t.Fatalf("[%s dop=%d] %q: %d rows over wire, %d in-process",
						st.name, dop, q, len(netRes.Rows), len(locRes.Rows))
				}
				for i := range locRes.Rows {
					if fmt.Sprint(netRes.Rows[i]) != fmt.Sprint(locRes.Rows[i]) {
						t.Fatalf("[%s dop=%d] %q row %d: wire %v != local %v",
							st.name, dop, q, i, netRes.Rows[i], locRes.Rows[i])
					}
					for j := range locRes.Rows[i] {
						if netRes.Rows[i][j].Kind() != locRes.Rows[i][j].Kind() {
							t.Fatalf("[%s dop=%d] %q row %d col %d: kind %v != %v",
								st.name, dop, q, i, j, netRes.Rows[i][j].Kind(), locRes.Rows[i][j].Kind())
						}
					}
				}
			}
		}
	}
}

// TestAbruptCloseReleasesResources is the teardown-fix satellite: killing a
// socket mid-transaction must roll the transaction back (locks released)
// and free the resource-group admission slot.
func TestAbruptCloseReleasesResources(t *testing.T) {
	e, srv := startServer(t, 2, server.Config{UseResourceGroups: true})
	admin := dialT(t, srv)
	defer admin.Close()
	ctx := context.Background()

	mustExecNet(t, admin, "CREATE TABLE r (id int, v int) DISTRIBUTED BY (id)")
	mustExecNet(t, admin, "INSERT INTO r VALUES (1, 10)")

	victim := dialT(t, srv)
	mustExecNet(t, victim, "BEGIN")
	mustExecNet(t, victim, "UPDATE r SET v = 99 WHERE id = 1") // row lock held

	// Sessions connecting with an empty role run as gpadmin → admin_group.
	g, ok := e.Cluster().Groups().Group("admin_group")
	if !ok {
		t.Fatal("admin_group missing")
	}
	if g.InUse() == 0 {
		t.Fatal("victim holds no admission slot — test is vacuous")
	}

	// Abrupt close: no terminate frame, socket just dies.
	_ = victim.Kill()

	// The server must notice, roll back, and release slot + session.
	deadline := time.Now().Add(5 * time.Second)
	for {
		// admin still holds its own slot between transactions? No: slots are
		// released at txn end, so all slots must drain.
		if srv.SessionCount() == 1 && g.InUse() == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("teardown leak: sessions=%d slots=%d", srv.SessionCount(), g.InUse())
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The victim's row lock must be gone: this update completes quickly.
	uctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	if _, err := admin.Exec(uctx, "UPDATE r SET v = 11 WHERE id = 1"); err != nil {
		t.Fatalf("lock leaked past teardown: %v", err)
	}
	res := mustExecNet(t, admin, "SELECT v FROM r WHERE id = 1")
	if res.Rows[0][0].Int() != 11 {
		t.Fatalf("uncommitted update leaked: %v", res.Rows)
	}
}

func TestGracefulDrain(t *testing.T) {
	e, srv := startServer(t, 2, server.Config{DrainTimeout: 2 * time.Second})
	c := dialT(t, srv)
	mustExecNet(t, c, "CREATE TABLE d (a int) DISTRIBUTED BY (a)")
	mustExecNet(t, c, "INSERT INTO d VALUES (1)")

	idle := dialT(t, srv)
	_ = idle

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if n := srv.SessionCount(); n != 0 {
		t.Fatalf("%d sessions survived drain", n)
	}
	// New connections are refused after drain.
	if _, err := client.DialTimeout(srv.Addr(), "", time.Second); err == nil {
		t.Fatal("dial succeeded after shutdown")
	}
	// The engine survives a server drain: acknowledged data is durable and
	// queryable in-process (FlushWAL ran).
	s, err := e.NewSession("")
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Exec(context.Background(), "SELECT count(*) FROM d")
	if err != nil || res.Rows[0][0].Int() != 1 {
		t.Fatalf("post-drain engine state: %v %v", res, err)
	}
}

func TestServerRejectsGarbageStartup(t *testing.T) {
	_, srv := startServer(t, 2, server.Config{})
	// Raw TCP, no valid startup: server must answer with an error frame and
	// close, not hang or crash.
	nc, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	if err := server.WriteFrame(nc, server.MsgQuery, (&server.Query{SQL: "SELECT 1"}).Encode()); err != nil {
		t.Fatal(err)
	}
	typ, _, err := server.ReadFrame(nc)
	if err != nil || typ != server.MsgError {
		t.Fatalf("want error frame, got %q err=%v", typ, err)
	}
	// Wrong protocol version is refused too.
	nc2, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer nc2.Close()
	bad := &server.Startup{Version: 999, Role: ""}
	if err := server.WriteFrame(nc2, server.MsgStartup, bad.Encode()); err != nil {
		t.Fatal(err)
	}
	typ, _, err = server.ReadFrame(nc2)
	if err != nil || typ != server.MsgError {
		t.Fatalf("bad version: want error frame, got %q err=%v", typ, err)
	}
}

func TestMaxConnsRefusesExcess(t *testing.T) {
	_, srv := startServer(t, 2, server.Config{MaxConns: 2})
	c1 := dialT(t, srv)
	defer c1.Close()
	c2 := dialT(t, srv)
	defer c2.Close()
	if _, err := client.DialTimeout(srv.Addr(), "", 2*time.Second); err == nil {
		t.Fatal("third connection admitted past MaxConns=2")
	} else if _, ok := err.(*client.ServerError); !ok {
		t.Fatalf("want ServerError refusal, got %T: %v", err, err)
	}
	// Stats reflect the refusal.
	if st := srv.Stats(); st.Rejected == 0 || st.Accepted != 2 {
		t.Fatalf("stats: %+v", st)
	}
	// Freeing a slot lets a new client in.
	_ = c2.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		c3, err := client.DialTimeout(srv.Addr(), "", time.Second)
		if err == nil {
			defer c3.Close()
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("slot not reclaimed: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestStatementTimeoutOverWire(t *testing.T) {
	_, srv := startServer(t, 2, server.Config{})
	c := dialT(t, srv)
	defer c.Close()
	mustExecNet(t, c, "CREATE TABLE st (a int) DISTRIBUTED BY (a)")
	mustExecNet(t, c, "INSERT INTO st VALUES (1)")
	mustExecNet(t, c, "SET statement_timeout = 1")
	// pg_sleep doesn't exist here; a cross join of the table with itself via
	// repeated self-joins is also unavailable. Instead rely on lock waits: a
	// second session holds the row, so our UPDATE must time out at ~1ms.
	holder := dialT(t, srv)
	defer holder.Close()
	mustExecNet(t, holder, "BEGIN")
	mustExecNet(t, holder, "UPDATE st SET a = 2 WHERE a = 1")
	_, err := c.Exec(context.Background(), "UPDATE st SET a = 3 WHERE a = 1")
	if err == nil {
		t.Fatal("statement_timeout did not fire")
	}
	if _, ok := err.(*client.ServerError); !ok {
		t.Fatalf("timeout must be a server error (session survives), got %T", err)
	}
	mustExecNet(t, holder, "ROLLBACK")
	mustExecNet(t, c, "SET statement_timeout = 0")
	mustExecNet(t, c, "SELECT count(*) FROM st")
}
