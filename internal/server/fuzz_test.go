package server_test

import (
	"bytes"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/server"
	"repro/internal/types"
)

// fuzzSrv is one server shared by every FuzzServerSession iteration —
// booting a cluster per input would make fuzzing useless. Guarded by a
// Once so `go test -fuzz` worker processes each boot exactly one.
var (
	fuzzOnce sync.Once
	fuzzAddr string
	fuzzEng  *core.Engine
)

func fuzzServer() string {
	fuzzOnce.Do(func() {
		cfg := cluster.GPDB6(2)
		fuzzEng = core.NewEngine(cfg)
		srv := server.New(fuzzEng, server.Config{})
		if err := srv.Start(); err != nil {
			panic(err)
		}
		fuzzAddr = srv.Addr()
	})
	return fuzzAddr
}

// frames builds a raw byte stream of frames for seeding.
func frames(parts ...[]byte) []byte {
	var buf bytes.Buffer
	for i := 0; i+1 < len(parts); i += 2 {
		_ = server.WriteFrame(&buf, parts[i][0], parts[i+1])
	}
	return buf.Bytes()
}

// FuzzServerSession throws arbitrary byte streams at a live TCP session:
// whatever arrives — truncated handshakes, corrupt frames, hostile length
// prefixes, valid traffic with garbage appended — the server must never
// panic, never leak the session, and must keep serving well-formed clients.
func FuzzServerSession(f *testing.F) {
	startup := (&server.Startup{Version: server.ProtocolVersion, Role: ""}).Encode()
	query := (&server.Query{SQL: "SELECT 1"}).Encode()
	ddl := (&server.Query{SQL: "CREATE TABLE fz (a int) DISTRIBUTED BY (a)"}).Encode()
	parse := (&server.Parse{Name: "s", SQL: "SELECT $1"}).Encode()
	bind := (&server.Bind{Name: "s", Params: []types.Datum{types.NewInt(1)}}).Encode()

	// Captured-handshake seeds: full valid exchanges, then mutations.
	f.Add(frames([]byte{server.MsgStartup}, startup, []byte{server.MsgQuery}, query, []byte{server.MsgTerminate}, nil))
	f.Add(frames([]byte{server.MsgStartup}, startup, []byte{server.MsgQuery}, ddl))
	f.Add(frames([]byte{server.MsgStartup}, startup,
		[]byte{server.MsgParse}, parse, []byte{server.MsgBind}, bind, []byte{server.MsgExecute}, nil))
	f.Add(frames([]byte{server.MsgStartup}, startup)[:3]) // truncated mid-header
	f.Add([]byte{server.MsgStartup, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Add([]byte("GET / HTTP/1.1\r\n\r\n")) // wrong protocol entirely
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, raw []byte) {
		addr := fuzzServer()
		nc, err := net.DialTimeout("tcp", addr, 5*time.Second)
		if err != nil {
			t.Skipf("dial: %v", err)
		}
		_ = nc.SetDeadline(time.Now().Add(5 * time.Second))
		_, _ = nc.Write(raw)
		// Half-close the write side where supported so the server sees EOF,
		// then drain whatever it answers until it hangs up.
		if tc, ok := nc.(*net.TCPConn); ok {
			_ = tc.CloseWrite()
		}
		_, _ = io.Copy(io.Discard, nc)
		_ = nc.Close()

		// The server must still be alive and correct for a real client.
		probe, err := net.DialTimeout("tcp", addr, 5*time.Second)
		if err != nil {
			t.Fatalf("server unreachable after fuzz input %x: %v", raw, err)
		}
		defer probe.Close()
		_ = probe.SetDeadline(time.Now().Add(5 * time.Second))
		st := &server.Startup{Version: server.ProtocolVersion, Role: ""}
		if err := server.WriteFrame(probe, server.MsgStartup, st.Encode()); err != nil {
			t.Fatalf("probe startup: %v", err)
		}
		typ, _, err := server.ReadFrame(probe)
		if err != nil || typ != server.MsgAuthOK {
			t.Fatalf("probe handshake broken after %x: typ=%q err=%v", raw, typ, err)
		}
	})
}
