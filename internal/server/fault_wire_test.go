package server_test

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/server"
	"repro/internal/server/client"
)

// TestClientErrorTaxonomy pins the classification table chaos harnesses
// depend on: which SQLSTATE codes are blindly retryable, which leave the
// statement's fate ambiguous, and how transport errors classify.
func TestClientErrorTaxonomy(t *testing.T) {
	cases := []struct {
		code      string
		retryable bool
		ambiguous bool
	}{
		{server.CodeRetryable, true, false},
		{server.CodeDeadlock, true, false},
		{server.CodeLostWrites, true, false},
		{server.CodeAmbiguous, false, true},
		{server.CodeCanceled, false, true},
		{server.CodeDiskFull, false, false},
		{server.CodeTxnAborted, false, false},
		{server.CodeInternal, false, false},
	}
	for _, tc := range cases {
		se := &client.ServerError{Message: "boom", Code: tc.code}
		if se.Retryable() != tc.retryable {
			t.Errorf("code %s: Retryable = %v, want %v", tc.code, se.Retryable(), tc.retryable)
		}
		if se.AmbiguousFate() != tc.ambiguous {
			t.Errorf("code %s: AmbiguousFate = %v, want %v", tc.code, se.AmbiguousFate(), tc.ambiguous)
		}
		if client.Retryable(se) != tc.retryable || client.AmbiguousFate(se) != tc.ambiguous {
			t.Errorf("code %s: package-level helpers disagree with methods", tc.code)
		}
		if !strings.Contains(se.Error(), "(SQLSTATE "+tc.code+")") {
			t.Errorf("code %s: Error() hides the code: %q", tc.code, se.Error())
		}
	}
	// A code-less error (old server) prints bare and classifies conservatively.
	bare := &client.ServerError{Message: "boom"}
	if bare.Error() != "boom" || bare.Retryable() || bare.AmbiguousFate() {
		t.Errorf("code-less error misclassified: %q %v %v", bare.Error(), bare.Retryable(), bare.AmbiguousFate())
	}
	// Transport errors: never blindly retryable, always ambiguous.
	plain := errors.New("read tcp: connection reset by peer")
	if client.Retryable(plain) {
		t.Error("transport error classified retryable")
	}
	if !client.AmbiguousFate(plain) {
		t.Error("transport error not classified ambiguous")
	}
	if client.AmbiguousFate(nil) {
		t.Error("nil error classified ambiguous")
	}
}

// TestWireRetryableDispatchCode arms a permanent pre-send dispatch fault
// and checks the failure crosses the wire as SQLSTATE 57P03: the server
// guarantees nothing executed, so the client may re-issue as-is.
func TestWireRetryableDispatchCode(t *testing.T) {
	e, srv := startServer(t, 2, server.Config{})
	c := dialT(t, srv)
	defer c.Close()
	ctx := context.Background()

	mustExecNet(t, c, "CREATE TABLE t (a int, b int) DISTRIBUTED BY (a)")
	mustExecNet(t, c, "FAULT INJECT 'dispatch_send' ACTION 'error'")
	_, err := c.Exec(ctx, "INSERT INTO t VALUES (1, 1)")
	e.Cluster().ResetFault("")
	if err == nil {
		t.Fatal("insert under permanent send fault succeeded")
	}
	var se *client.ServerError
	if !errors.As(err, &se) {
		t.Fatalf("want *ServerError, got %T: %v", err, err)
	}
	if se.Code != server.CodeRetryable {
		t.Fatalf("code = %q, want %q (%v)", se.Code, server.CodeRetryable, err)
	}
	if !client.Retryable(err) || client.AmbiguousFate(err) {
		t.Fatalf("pre-send failure misclassified: retryable=%v ambiguous=%v",
			client.Retryable(err), client.AmbiguousFate(err))
	}
	// Nothing executed: once the opened breaker cools down, the retry
	// lands cleanly on the same session.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := c.Exec(ctx, "INSERT INTO t VALUES (1, 1)"); err == nil {
			break
		} else if !client.Retryable(err) {
			t.Fatalf("retry failed non-retryably: %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatal("breaker never recovered after fault reset")
		}
		time.Sleep(20 * time.Millisecond)
	}
	res := mustExecNet(t, c, "SELECT count(*) FROM t")
	if res.Rows[0][0].Int() != 1 {
		t.Fatalf("count after retry: %v", res.Rows)
	}
}

// TestWireAmbiguousDispatchCode: a fault on the response path of a
// non-idempotent statement crosses the wire as SQLSTATE 58030 — the
// operation may have executed, so the client must reconcile, not retry.
func TestWireAmbiguousDispatchCode(t *testing.T) {
	e, srv := startServer(t, 2, server.Config{})
	c := dialT(t, srv)
	defer c.Close()
	ctx := context.Background()

	mustExecNet(t, c, "CREATE TABLE t (a int, b int) DISTRIBUTED BY (a)")
	mustExecNet(t, c, "FAULT INJECT 'dispatch_recv' ACTION 'error' COUNT 1")
	_, err := c.Exec(ctx, "INSERT INTO t VALUES (1, 1)")
	e.Cluster().ResetFault("")
	if err == nil {
		t.Fatal("insert under recv fault succeeded")
	}
	var se *client.ServerError
	if !errors.As(err, &se) {
		t.Fatalf("want *ServerError, got %T: %v", err, err)
	}
	if se.Code != server.CodeAmbiguous {
		t.Fatalf("code = %q, want %q (%v)", se.Code, server.CodeAmbiguous, err)
	}
	if client.Retryable(err) || !client.AmbiguousFate(err) {
		t.Fatalf("post-send failure misclassified: retryable=%v ambiguous=%v",
			client.Retryable(err), client.AmbiguousFate(err))
	}
	if !strings.Contains(err.Error(), "(SQLSTATE 58030)") {
		t.Fatalf("code missing from message: %v", err)
	}
	// Reconciliation is possible on the same session: the count tells the
	// truth about whether the ambiguous insert landed.
	res := mustExecNet(t, c, "SELECT count(*) FROM t")
	if n := res.Rows[0][0].Int(); n != 0 && n != 1 {
		t.Fatalf("reconciliation count: %d", n)
	}
}
