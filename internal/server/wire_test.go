package server

import (
	"bytes"
	"encoding/binary"
	"math"
	"reflect"
	"testing"

	"repro/internal/types"
)

func TestFrameRoundTrip(t *testing.T) {
	payloads := [][]byte{nil, {}, {0x01}, bytes.Repeat([]byte{0xAB}, 1<<16)}
	for _, p := range payloads {
		var buf bytes.Buffer
		if err := WriteFrame(&buf, MsgQuery, p); err != nil {
			t.Fatalf("WriteFrame: %v", err)
		}
		typ, got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("ReadFrame: %v", err)
		}
		if typ != MsgQuery || !bytes.Equal(got, p) {
			t.Fatalf("round trip mismatch: typ=%q len=%d want len=%d", typ, len(got), len(p))
		}
	}
}

func TestFrameTooLarge(t *testing.T) {
	// A hostile length prefix must be rejected by header inspection, before
	// the payload allocation — this header declares ~4 GiB.
	hdr := []byte{MsgQuery, 0xFF, 0xFF, 0xFF, 0xFF}
	if _, _, err := ReadFrame(bytes.NewReader(hdr)); err != ErrFrameTooLarge {
		t.Fatalf("got %v, want ErrFrameTooLarge", err)
	}
	if err := WriteFrame(&bytes.Buffer{}, MsgQuery, make([]byte, MaxFrameLen+1)); err != ErrFrameTooLarge {
		t.Fatalf("oversized write: got %v, want ErrFrameTooLarge", err)
	}
}

func TestDatumRoundTrip(t *testing.T) {
	datums := []types.Datum{
		types.Null,
		types.NewInt(0),
		types.NewInt(-1),
		types.NewInt(math.MaxInt64),
		types.NewInt(math.MinInt64),
		types.NewFloat(3.5),
		types.NewFloat(math.Inf(-1)),
		types.NewFloat(math.NaN()),
		types.NewBool(true),
		types.NewBool(false),
		types.NewText(""),
		types.NewText("it's a 'quoted' string\x00with NUL"),
		types.NewDate(0),
		types.NewDate(-719162), // far past
		types.NewDate(18993),   // 2022-01-01
	}
	var w wbuf
	w.row(types.Row(datums))
	r := rbuf{b: w.b}
	got := r.row()
	if err := r.done(); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(got) != len(datums) {
		t.Fatalf("got %d datums, want %d", len(got), len(datums))
	}
	for i, d := range datums {
		g := got[i]
		if g.Kind() != d.Kind() {
			t.Fatalf("datum %d: kind %v, want %v", i, g.Kind(), d.Kind())
		}
		switch d.Kind() {
		case types.KindFloat:
			if math.Float64bits(g.Float()) != math.Float64bits(d.Float()) {
				t.Fatalf("datum %d: float bits differ", i)
			}
		case types.KindNull:
		default:
			if types.Compare(g, d) != 0 {
				t.Fatalf("datum %d: %v != %v", i, g, d)
			}
		}
	}
}

func TestMessageRoundTrips(t *testing.T) {
	row := types.Row{types.NewInt(7), types.NewText("x"), types.Null}
	check := func(name string, enc []byte, dec func([]byte) (any, error), want any) {
		t.Helper()
		got, err := dec(enc)
		if err != nil {
			t.Fatalf("%s: decode: %v", name, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: got %+v, want %+v", name, got, want)
		}
	}
	st := &Startup{Version: ProtocolVersion, Role: "analyst"}
	check("startup", st.Encode(), func(b []byte) (any, error) { return DecodeStartup(b) }, st)
	q := &Query{SQL: "SELECT $1", Params: row}
	check("query", q.Encode(), func(b []byte) (any, error) { return DecodeQuery(b) }, q)
	qe := &Query{SQL: "SELECT 1"}
	check("query-noparams", qe.Encode(), func(b []byte) (any, error) { return DecodeQuery(b) }, qe)
	p := &Parse{Name: "s1", SQL: "SELECT $1"}
	check("parse", p.Encode(), func(b []byte) (any, error) { return DecodeParse(b) }, p)
	bd := &Bind{Name: "s1", Params: row}
	check("bind", bd.Encode(), func(b []byte) (any, error) { return DecodeBind(b) }, bd)
	cs := &CloseStmt{Name: "s1"}
	check("close", cs.Encode(), func(b []byte) (any, error) { return DecodeCloseStmt(b) }, cs)
	ao := &AuthOK{SessionID: 42}
	check("authok", ao.Encode(), func(b []byte) (any, error) { return DecodeAuthOK(b) }, ao)
	rd := &RowDesc{Cols: []ColDesc{{Name: "a", Kind: types.KindInt}, {Name: "b", Kind: types.KindText}}}
	check("rowdesc", rd.Encode(), func(b []byte) (any, error) { return DecodeRowDesc(b) }, rd)
	dr := &DataRow{Row: row}
	check("datarow", dr.Encode(), func(b []byte) (any, error) { return DecodeDataRow(b) }, dr)
	cm := &Complete{Tag: "INSERT", RowsAffected: 3}
	check("complete", cm.Encode(), func(b []byte) (any, error) { return DecodeComplete(b) }, cm)
	em := &ErrorMsg{Message: "boom"}
	check("error", em.Encode(), func(b []byte) (any, error) { return DecodeErrorMsg(b) }, em)
	ry := &Ready{Status: 'I'}
	check("ready", ry.Encode(), func(b []byte) (any, error) { return DecodeReady(b) }, ry)
}

// decodeAny runs every message decoder over b; none may panic, and the
// fuzzer additionally checks re-encode fidelity for the ones that succeed.
func decodeAny(t testing.TB, b []byte) {
	if m, err := DecodeStartup(b); err == nil {
		if !bytes.Equal(m.Encode(), b) {
			t.Fatalf("startup re-encode differs for %x", b)
		}
	}
	if m, err := DecodeQuery(b); err == nil {
		if got, err2 := DecodeQuery(m.Encode()); err2 != nil || got.SQL != m.SQL {
			t.Fatalf("query re-encode unstable for %x", b)
		}
	}
	if m, err := DecodeParse(b); err == nil {
		if !bytes.Equal(m.Encode(), b) {
			t.Fatalf("parse re-encode differs for %x", b)
		}
	}
	if m, err := DecodeBind(b); err == nil {
		if got, err2 := DecodeBind(m.Encode()); err2 != nil || got.Name != m.Name {
			t.Fatalf("bind re-encode unstable for %x", b)
		}
	}
	_, _ = DecodeCloseStmt(b)
	_, _ = DecodeAuthOK(b)
	_, _ = DecodeRowDesc(b)
	_, _ = DecodeDataRow(b)
	_, _ = DecodeComplete(b)
	_, _ = DecodeErrorMsg(b)
	_, _ = DecodeReady(b)
}

func TestTruncatedAndCorruptPayloads(t *testing.T) {
	row := types.Row{types.NewInt(7), types.NewText("hello"), types.NewFloat(1.5)}
	full := (&Query{SQL: "SELECT a FROM t WHERE b = $1", Params: row}).Encode()
	// Every strict prefix must decode to an error, never a panic.
	for i := 0; i < len(full); i++ {
		if _, err := DecodeQuery(full[:i]); err == nil {
			t.Fatalf("truncated payload (%d/%d bytes) decoded without error", i, len(full))
		}
		decodeAny(t, full[:i])
	}
	// Trailing garbage is a protocol error too.
	if _, err := DecodeQuery(append(append([]byte{}, full...), 0x00)); err == nil {
		t.Fatal("trailing byte accepted")
	}
	// A row declaring an absurd column count must be rejected without
	// attempting the allocation.
	var w wbuf
	w.str("SELECT 1")
	w.u16(maxRowCols + 1)
	if _, err := DecodeQuery(w.b); err == nil {
		t.Fatal("oversized column count accepted")
	}
}

func FuzzFrameCodec(f *testing.F) {
	row := types.Row{types.NewInt(-3), types.NewText("x'y"), types.NewFloat(2.5), types.NewBool(true), types.NewDate(19000), types.Null}
	f.Add((&Startup{Version: ProtocolVersion, Role: "admin"}).Encode())
	f.Add((&Query{SQL: "SELECT * FROM t WHERE a = $1", Params: row}).Encode())
	f.Add((&Parse{Name: "s", SQL: "INSERT INTO t VALUES ($1, $2)"}).Encode())
	f.Add((&Bind{Name: "s", Params: row}).Encode())
	f.Add((&RowDesc{Cols: []ColDesc{{Name: "a", Kind: types.KindInt}}}).Encode())
	f.Add((&DataRow{Row: row}).Encode())
	f.Add((&Complete{Tag: "SELECT", RowsAffected: 10}).Encode())
	f.Add((&ErrorMsg{Message: "relation does not exist"}).Encode())
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, b []byte) {
		// Every decoder must be total: error or value, never panic/OOM.
		decodeAny(t, b)
		// The frame reader over arbitrary bytes must be equally tame.
		r := bytes.NewReader(b)
		for {
			_, payload, err := ReadFrame(r)
			if err != nil {
				break
			}
			if len(payload) > MaxFrameLen {
				t.Fatalf("ReadFrame returned %d > MaxFrameLen payload", len(payload))
			}
		}
		// And a frame we write must read back identically.
		var buf bytes.Buffer
		if len(b) <= MaxFrameLen {
			if err := WriteFrame(&buf, MsgQuery, b); err != nil {
				t.Fatalf("WriteFrame: %v", err)
			}
			typ, got, err := ReadFrame(&buf)
			if err != nil || typ != MsgQuery || !bytes.Equal(got, b) {
				t.Fatalf("frame round trip failed: %v", err)
			}
		}
	})
}

// TestReadFrameHeaderBounds pins the exact header layout (type byte +
// big-endian u32) so a codec refactor cannot silently change the wire.
func TestReadFrameHeaderBounds(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, MsgParse, []byte("abc")); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if raw[0] != MsgParse {
		t.Fatalf("type byte %q, want %q", raw[0], MsgParse)
	}
	if n := binary.BigEndian.Uint32(raw[1:5]); n != 3 {
		t.Fatalf("length %d, want 3", n)
	}
	if string(raw[5:]) != "abc" {
		t.Fatalf("payload %q", raw[5:])
	}
}
