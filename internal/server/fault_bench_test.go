package server_test

import (
	"context"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/server"
	"repro/internal/server/client"
	"repro/internal/workload"
)

// faultBenchStack boots an engine + wire server + long-lived client
// connections for the disarmed-overhead comparison.
type faultBenchStack struct {
	e     *core.Engine
	srv   *server.Server
	conns []*client.Client
}

func newFaultBenchStack(b *testing.B, clients int, noFaults bool) *faultBenchStack {
	b.Helper()
	w := &workload.TPCB{Branches: 4, AccountsPerBranch: 100}
	cfg := cluster.GPDB6(2)
	// The same realistically priced statement as BenchmarkNetworkTPCB: the
	// overhead gate must measure disarmed fault points against real work,
	// not against a no-op dispatch.
	cfg.NetDelay = 500 * time.Microsecond
	cfg.FsyncDelay = 2 * time.Millisecond
	cfg.SegmentStmtCPU = time.Millisecond
	cfg.SegmentWorkers = 4
	cfg.GDDPeriod = 10 * time.Millisecond
	cfg.NoFaultPoints = noFaults
	e := core.NewEngine(cfg)
	b.Cleanup(e.Close)

	ctx := context.Background()
	loader, err := e.NewSession("")
	if err != nil {
		b.Fatal(err)
	}
	if err := loader.ExecScript(ctx, w.Schema()); err != nil {
		b.Fatal(err)
	}
	if err := w.Load(ctx, coreConn{loader}); err != nil {
		b.Fatal(err)
	}
	loader.Close()

	srv := server.New(e, server.Config{Workers: clients})
	if err := srv.Start(); err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { _ = srv.Shutdown(context.Background()) })

	st := &faultBenchStack{e: e, srv: srv, conns: make([]*client.Client, clients)}
	for i := range st.conns {
		c, err := client.DialTimeout(srv.Addr(), "", 10*time.Second)
		if err != nil {
			b.Fatalf("dial %d: %v", i, err)
		}
		st.conns[i] = c
		b.Cleanup(func() { _ = c.Close() })
	}
	return st
}

// run measures one TPC-B window over the stack's connections and returns
// the throughput.
func (st *faultBenchStack) run(clients int, window time.Duration) float64 {
	w := &workload.TPCB{Branches: 4, AccountsPerBranch: 100}
	rs := make([]*workload.Rand, clients)
	for i := range rs {
		rs[i] = workload.NewRand(uint64(i)*104729 + 13)
	}
	res := bench.RunConcurrent(clients, window, func(ctx context.Context, id int) error {
		return w.Transaction(ctx, client.WorkloadConn{C: st.conns[id]}, rs[id])
	})
	return res.TPS()
}

// BenchmarkFaultDisarmedOverhead is the robustness PR's performance gate: a
// cluster with the fault registry present but nothing armed must sustain at
// least 0.95x the network TPC-B throughput of a cluster built with
// NoFaultPoints (no registry at all). Each b.N iteration takes the best of
// three windows per side to damp scheduler noise before gating.
func BenchmarkFaultDisarmedOverhead(b *testing.B) {
	const clients = 64
	window := 300 * time.Millisecond

	baseline := newFaultBenchStack(b, clients, true)  // no registry at all
	disarmed := newFaultBenchStack(b, clients, false) // registry, nothing armed
	if disarmed.e.Cluster().Faults() == nil || baseline.e.Cluster().Faults() != nil {
		b.Fatal("stacks misconfigured")
	}

	best := func(st *faultBenchStack) float64 {
		var m float64
		for i := 0; i < 3; i++ {
			if tps := st.run(clients, window); tps > m {
				m = tps
			}
		}
		return m
	}

	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		base := best(baseline)
		dis := best(disarmed)
		ratio := 0.0
		if base > 0 {
			ratio = dis / base
		}
		b.ReportMetric(base, "tps-nofaults")
		b.ReportMetric(dis, "tps-disarmed")
		b.ReportMetric(ratio, "disarmed/nofaults")
		if ratio < 0.95 {
			b.Errorf("disarmed fault points cost too much: %.0f vs %.0f TPS (%.3fx, gate 0.95x)",
				dis, base, ratio)
		}
	}
}
