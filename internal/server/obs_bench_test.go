package server_test

import (
	"context"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/server"
	"repro/internal/server/client"
	"repro/internal/workload"
)

// obsBenchStack boots an engine + wire server + long-lived client
// connections for the observability disarmed-overhead comparison.
type obsBenchStack struct {
	e     *core.Engine
	srv   *server.Server
	conns []*client.Client
}

func newObsBenchStack(b *testing.B, clients int, recording bool) *obsBenchStack {
	b.Helper()
	w := &workload.TPCB{Branches: 4, AccountsPerBranch: 100}
	cfg := cluster.GPDB6(2)
	// The same realistically priced statement as BenchmarkNetworkTPCB: the
	// gate measures the armed metrics/activity path against real work.
	cfg.NetDelay = 500 * time.Microsecond
	cfg.FsyncDelay = 2 * time.Millisecond
	cfg.SegmentStmtCPU = time.Millisecond
	cfg.SegmentWorkers = 4
	cfg.GDDPeriod = 10 * time.Millisecond
	e := core.NewEngine(cfg)
	b.Cleanup(e.Close)
	// The baseline reconstructs the pre-observability stack: with query
	// recording off, statements skip the activity/trace path entirely.
	// Registry counters stay on in both stacks — they replaced the old
	// ad-hoc atomics one for one, so there is no "without" configuration.
	e.Activity().SetEnabled(recording)

	ctx := context.Background()
	loader, err := e.NewSession("")
	if err != nil {
		b.Fatal(err)
	}
	if err := loader.ExecScript(ctx, w.Schema()); err != nil {
		b.Fatal(err)
	}
	if err := w.Load(ctx, coreConn{loader}); err != nil {
		b.Fatal(err)
	}
	loader.Close()

	srv := server.New(e, server.Config{Workers: clients})
	if err := srv.Start(); err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { _ = srv.Shutdown(context.Background()) })

	st := &obsBenchStack{e: e, srv: srv, conns: make([]*client.Client, clients)}
	for i := range st.conns {
		c, err := client.DialTimeout(srv.Addr(), "", 10*time.Second)
		if err != nil {
			b.Fatalf("dial %d: %v", i, err)
		}
		st.conns[i] = c
		b.Cleanup(func() { _ = c.Close() })
	}
	return st
}

func (st *obsBenchStack) run(clients int, window time.Duration) float64 {
	w := &workload.TPCB{Branches: 4, AccountsPerBranch: 100}
	rs := make([]*workload.Rand, clients)
	for i := range rs {
		rs[i] = workload.NewRand(uint64(i)*104729 + 17)
	}
	res := bench.RunConcurrent(clients, window, func(ctx context.Context, id int) error {
		return w.Transaction(ctx, client.WorkloadConn{C: st.conns[id]}, rs[id])
	})
	return res.TPS()
}

// BenchmarkObsDisarmedOverhead is the observability PR's performance gate:
// with tracing off but metrics and query recording on (the default
// configuration), network TPC-B throughput must stay at least 0.95x a stack
// with query recording disabled (the pre-observability baseline). Each b.N
// iteration takes the best of three windows per side to damp scheduler noise
// before gating.
func BenchmarkObsDisarmedOverhead(b *testing.B) {
	const clients = 64
	window := 300 * time.Millisecond

	baseline := newObsBenchStack(b, clients, false) // recording off
	armed := newObsBenchStack(b, clients, true)     // metrics + activity on, tracing off
	if !armed.e.Activity().Enabled() || baseline.e.Activity().Enabled() {
		b.Fatal("stacks misconfigured")
	}

	best := func(st *obsBenchStack) float64 {
		var m float64
		for i := 0; i < 3; i++ {
			if tps := st.run(clients, window); tps > m {
				m = tps
			}
		}
		return m
	}

	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		base := best(baseline)
		on := best(armed)
		ratio := 0.0
		if base > 0 {
			ratio = on / base
		}
		b.ReportMetric(base, "tps-disabled")
		b.ReportMetric(on, "tps-armed")
		b.ReportMetric(ratio, "armed/disabled")
		if ratio < 0.95 {
			b.Errorf("armed observability costs too much: %.0f vs %.0f TPS (%.3fx, gate 0.95x)",
				on, base, ratio)
		}
	}
}
