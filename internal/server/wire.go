// Package server is the network front end: a TCP server speaking a simple
// length-prefixed framed protocol (startup/auth-stub, simple query,
// prepared parse/bind/execute, row description + data rows, errors,
// graceful terminate) over the embedded engine, with a session layer that
// multiplexes thousands of client connections onto a bounded worker pool.
//
// Wire format: every message is one frame
//
//	type (1 byte) | payload length (4 bytes, big endian) | payload
//
// Payload scalars are big endian; strings are u32 length + bytes; datums
// are a kind byte followed by the kind's fixed or string encoding. The
// codec is deliberately allocation-light and panic-free on arbitrary
// input — FuzzFrameCodec and FuzzServerSession hold it to that.
package server

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"repro/internal/types"
)

// Protocol limits. Oversized frames are rejected by header inspection
// before any payload allocation, so a hostile length prefix cannot OOM the
// server.
const (
	// ProtocolVersion is bumped on any incompatible frame change.
	// v2: ErrorMsg carries a machine-readable error code after the text.
	ProtocolVersion = 2
	// MaxFrameLen bounds one frame's payload (16 MiB — a full batch of wide
	// text rows fits with room to spare).
	MaxFrameLen = 16 << 20
	// maxRowCols bounds the declared column count of a row/description so a
	// corrupt header cannot pre-allocate gigabytes.
	maxRowCols = 1 << 14
)

// Frame types, client → server.
const (
	// MsgStartup opens a session: protocol version + role name.
	MsgStartup = byte('S')
	// MsgQuery is a simple query: SQL text plus optional $N parameters.
	MsgQuery = byte('Q')
	// MsgParse prepares a named statement from SQL text.
	MsgParse = byte('P')
	// MsgBind binds parameter values to a prepared statement, forming the
	// connection's (single, unnamed) portal.
	MsgBind = byte('B')
	// MsgExecute runs the bound portal.
	MsgExecute = byte('E')
	// MsgCloseStmt discards a prepared statement.
	MsgCloseStmt = byte('C')
	// MsgTerminate closes the session cleanly.
	MsgTerminate = byte('X')
)

// Frame types, server → client.
const (
	// MsgAuthOK acknowledges startup and carries the session id.
	MsgAuthOK = byte('R')
	// MsgRowDesc describes result columns (name + type kind each).
	MsgRowDesc = byte('T')
	// MsgDataRow carries one result tuple.
	MsgDataRow = byte('D')
	// MsgComplete ends a successful statement: command tag + rows affected.
	MsgComplete = byte('K')
	// MsgError reports a statement or protocol error.
	MsgError = byte('!')
	// MsgReady says the session is ready for the next statement; the status
	// byte is 'I' (idle), 'T' (in transaction) or 'F' (failed transaction).
	MsgReady = byte('Z')
	// MsgParseOK acknowledges MsgParse.
	MsgParseOK = byte('1')
	// MsgBindOK acknowledges MsgBind.
	MsgBindOK = byte('2')
)

// Codec errors.
var (
	// ErrFrameTooLarge rejects a frame whose header declares more than
	// MaxFrameLen payload bytes.
	ErrFrameTooLarge = errors.New("server: frame exceeds maximum length")
	// errShortPayload is the sticky decode error for truncated payloads.
	errShortPayload = errors.New("server: truncated frame payload")
)

// WriteFrame writes one frame.
func WriteFrame(w io.Writer, typ byte, payload []byte) error {
	if len(payload) > MaxFrameLen {
		return ErrFrameTooLarge
	}
	var hdr [5]byte
	hdr[0] = typ
	binary.BigEndian.PutUint32(hdr[1:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one frame, enforcing MaxFrameLen before allocating.
func ReadFrame(r io.Reader) (byte, []byte, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[1:])
	if n > MaxFrameLen {
		return 0, nil, ErrFrameTooLarge
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	return hdr[0], payload, nil
}

// wbuf builds a frame payload.
type wbuf struct{ b []byte }

func (w *wbuf) u8(v byte)   { w.b = append(w.b, v) }
func (w *wbuf) u16(v int)   { w.b = binary.BigEndian.AppendUint16(w.b, uint16(v)) }
func (w *wbuf) u32(v int64) { w.b = binary.BigEndian.AppendUint32(w.b, uint32(v)) }
func (w *wbuf) u64(v uint64) {
	w.b = binary.BigEndian.AppendUint64(w.b, v)
}
func (w *wbuf) str(s string) {
	w.u32(int64(len(s)))
	w.b = append(w.b, s...)
}

// datum appends one datum: kind byte + payload. Dates travel as their raw
// day count, so every kind round-trips bit-exactly.
func (w *wbuf) datum(d types.Datum) {
	w.u8(byte(d.Kind()))
	switch d.Kind() {
	case types.KindNull:
	case types.KindInt, types.KindDate:
		w.u64(uint64(d.Int()))
	case types.KindFloat:
		w.u64(math.Float64bits(d.Float()))
	case types.KindBool:
		if d.Bool() {
			w.u8(1)
		} else {
			w.u8(0)
		}
	default: // text
		w.str(d.String())
	}
}

func (w *wbuf) row(r types.Row) {
	w.u16(len(r))
	for _, d := range r {
		w.datum(d)
	}
}

// rbuf decodes a frame payload with sticky-error bounds checking: any
// truncation or bad tag flips err and every later read returns zero values,
// so decoders are straight-line code with one error check at the end.
type rbuf struct {
	b   []byte
	off int
	err error
}

func (r *rbuf) fail() {
	if r.err == nil {
		r.err = errShortPayload
	}
}

func (r *rbuf) take(n int) []byte {
	if r.err != nil || n < 0 || len(r.b)-r.off < n {
		r.fail()
		return nil
	}
	out := r.b[r.off : r.off+n]
	r.off += n
	return out
}

func (r *rbuf) u8() byte {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *rbuf) u16() int {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return int(binary.BigEndian.Uint16(b))
}

func (r *rbuf) u32() int64 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return int64(binary.BigEndian.Uint32(b))
}

func (r *rbuf) u64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

func (r *rbuf) str() string {
	n := r.u32()
	return string(r.take(int(n)))
}

func (r *rbuf) datum() types.Datum {
	kind := types.Kind(r.u8())
	switch kind {
	case types.KindNull:
		return types.Null
	case types.KindInt:
		return types.NewInt(int64(r.u64()))
	case types.KindFloat:
		return types.NewFloat(math.Float64frombits(r.u64()))
	case types.KindBool:
		return types.NewBool(r.u8() != 0)
	case types.KindText:
		return types.NewText(r.str())
	case types.KindDate:
		return types.NewDate(int64(r.u64()))
	default:
		r.err = fmt.Errorf("server: unknown datum kind %d", kind)
		return types.Null
	}
}

func (r *rbuf) row() types.Row {
	n := r.u16()
	if n > maxRowCols {
		r.err = fmt.Errorf("server: row declares %d columns", n)
		return nil
	}
	if n == 0 {
		return nil
	}
	out := make(types.Row, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, r.datum())
		if r.err != nil {
			return nil
		}
	}
	return out
}

// done checks the payload was consumed exactly — trailing garbage is a
// protocol error, not silently ignored.
func (r *rbuf) done() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.b) {
		return fmt.Errorf("server: %d trailing bytes in frame", len(r.b)-r.off)
	}
	return nil
}

// ---- message encode/decode ----

// Startup opens a session.
type Startup struct {
	Version uint32
	Role    string
}

// Encode marshals the message payload.
func (m *Startup) Encode() []byte {
	var w wbuf
	w.u32(int64(m.Version))
	w.str(m.Role)
	return w.b
}

// DecodeStartup unmarshals a MsgStartup payload.
func DecodeStartup(b []byte) (*Startup, error) {
	r := rbuf{b: b}
	m := &Startup{Version: uint32(r.u32()), Role: r.str()}
	return m, r.done()
}

// Query is a simple query with optional parameters.
type Query struct {
	SQL    string
	Params []types.Datum
}

// Encode marshals the message payload.
func (m *Query) Encode() []byte {
	var w wbuf
	w.str(m.SQL)
	w.row(types.Row(m.Params))
	return w.b
}

// DecodeQuery unmarshals a MsgQuery payload.
func DecodeQuery(b []byte) (*Query, error) {
	r := rbuf{b: b}
	m := &Query{SQL: r.str(), Params: r.row()}
	return m, r.done()
}

// Parse prepares a named statement.
type Parse struct {
	Name string
	SQL  string
}

// Encode marshals the message payload.
func (m *Parse) Encode() []byte {
	var w wbuf
	w.str(m.Name)
	w.str(m.SQL)
	return w.b
}

// DecodeParse unmarshals a MsgParse payload.
func DecodeParse(b []byte) (*Parse, error) {
	r := rbuf{b: b}
	m := &Parse{Name: r.str(), SQL: r.str()}
	return m, r.done()
}

// Bind binds parameters to a prepared statement.
type Bind struct {
	Name   string
	Params []types.Datum
}

// Encode marshals the message payload.
func (m *Bind) Encode() []byte {
	var w wbuf
	w.str(m.Name)
	w.row(types.Row(m.Params))
	return w.b
}

// DecodeBind unmarshals a MsgBind payload.
func DecodeBind(b []byte) (*Bind, error) {
	r := rbuf{b: b}
	m := &Bind{Name: r.str(), Params: r.row()}
	return m, r.done()
}

// CloseStmt discards a prepared statement.
type CloseStmt struct{ Name string }

// Encode marshals the message payload.
func (m *CloseStmt) Encode() []byte {
	var w wbuf
	w.str(m.Name)
	return w.b
}

// DecodeCloseStmt unmarshals a MsgCloseStmt payload.
func DecodeCloseStmt(b []byte) (*CloseStmt, error) {
	r := rbuf{b: b}
	m := &CloseStmt{Name: r.str()}
	return m, r.done()
}

// AuthOK acknowledges startup.
type AuthOK struct{ SessionID uint64 }

// Encode marshals the message payload.
func (m *AuthOK) Encode() []byte {
	var w wbuf
	w.u64(m.SessionID)
	return w.b
}

// DecodeAuthOK unmarshals a MsgAuthOK payload.
func DecodeAuthOK(b []byte) (*AuthOK, error) {
	r := rbuf{b: b}
	m := &AuthOK{SessionID: r.u64()}
	return m, r.done()
}

// ColDesc is one result column.
type ColDesc struct {
	Name string
	Kind types.Kind
}

// RowDesc describes the result columns.
type RowDesc struct{ Cols []ColDesc }

// Encode marshals the message payload.
func (m *RowDesc) Encode() []byte {
	var w wbuf
	w.u16(len(m.Cols))
	for _, c := range m.Cols {
		w.str(c.Name)
		w.u8(byte(c.Kind))
	}
	return w.b
}

// DecodeRowDesc unmarshals a MsgRowDesc payload.
func DecodeRowDesc(b []byte) (*RowDesc, error) {
	r := rbuf{b: b}
	n := r.u16()
	if n > maxRowCols {
		return nil, fmt.Errorf("server: row description declares %d columns", n)
	}
	m := &RowDesc{}
	for i := 0; i < n && r.err == nil; i++ {
		m.Cols = append(m.Cols, ColDesc{Name: r.str(), Kind: types.Kind(r.u8())})
	}
	return m, r.done()
}

// DataRow carries one result tuple.
type DataRow struct{ Row types.Row }

// Encode marshals the message payload.
func (m *DataRow) Encode() []byte {
	var w wbuf
	w.row(m.Row)
	return w.b
}

// DecodeDataRow unmarshals a MsgDataRow payload.
func DecodeDataRow(b []byte) (*DataRow, error) {
	r := rbuf{b: b}
	m := &DataRow{Row: r.row()}
	return m, r.done()
}

// Complete ends a successful statement.
type Complete struct {
	Tag          string
	RowsAffected int64
}

// Encode marshals the message payload.
func (m *Complete) Encode() []byte {
	var w wbuf
	w.str(m.Tag)
	w.u64(uint64(m.RowsAffected))
	return w.b
}

// DecodeComplete unmarshals a MsgComplete payload.
func DecodeComplete(b []byte) (*Complete, error) {
	r := rbuf{b: b}
	m := &Complete{Tag: r.str(), RowsAffected: int64(r.u64())}
	return m, r.done()
}

// SQLSTATE-flavored error codes carried in ErrorMsg.Code, so drivers
// classify failures structurally instead of string-matching error text.
const (
	// CodeInternal is the catch-all for unclassified statement errors.
	CodeInternal = "XX000"
	// CodeDiskFull reports a spill that ran out of disk (exec.ErrDiskFull).
	CodeDiskFull = "53100"
	// CodeDeadlock marks the statement a deadlock victim; the transaction
	// was aborted and can be retried from the top.
	CodeDeadlock = "40P01"
	// CodeCanceled reports a canceled or timed-out statement.
	CodeCanceled = "57014"
	// CodeLostWrites aborts a transaction whose writes landed on a segment
	// that failed over before commit; retrying re-runs it on the new primary.
	CodeLostWrites = "40001"
	// CodeRetryable reports a failure before the statement reached the
	// segment (circuit breaker open, segment mid-failover, pre-send dispatch
	// fault): nothing executed, so the client may retry as-is.
	CodeRetryable = "57P03"
	// CodeAmbiguous reports a dispatch failure after the operation reached
	// the segment: its fate is unknown and blind retry is unsafe.
	CodeAmbiguous = "58030"
	// CodeTxnAborted rejects statements inside a failed transaction block.
	CodeTxnAborted = "25P02"
)

// ErrorMsg reports an error to the client: human-readable text plus a
// machine-readable code (one of the Code* constants).
type ErrorMsg struct {
	Message string
	Code    string
}

// Encode marshals the message payload.
func (m *ErrorMsg) Encode() []byte {
	var w wbuf
	w.str(m.Message)
	w.str(m.Code)
	return w.b
}

// DecodeErrorMsg unmarshals a MsgError payload.
func DecodeErrorMsg(b []byte) (*ErrorMsg, error) {
	r := rbuf{b: b}
	m := &ErrorMsg{Message: r.str(), Code: r.str()}
	return m, r.done()
}

// Ready says the session awaits the next statement.
type Ready struct{ Status byte }

// Encode marshals the message payload.
func (m *Ready) Encode() []byte {
	var w wbuf
	w.u8(m.Status)
	return w.b
}

// DecodeReady unmarshals a MsgReady payload.
func DecodeReady(b []byte) (*Ready, error) {
	r := rbuf{b: b}
	m := &Ready{Status: r.u8()}
	return m, r.done()
}
