package server_test

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/server"
	"repro/internal/server/client"
	"repro/internal/types"
	"repro/internal/workload"
)

// TestConnectionChurnChaos is the connection-churn battery: a crowd of
// sockets runs TPC-B-style transactions while a killer tears connections
// down at random moments — mid-statement, mid-transaction, mid-commit.
// Afterwards the survivors' ledger must reconcile exactly:
//
//   - every transaction whose COMMIT was acknowledged is in the database;
//   - every transaction that never reached COMMIT is not;
//   - a COMMIT whose response was lost to the socket dying is ambiguous —
//     allowed either way, but if present it must be complete (atomicity);
//   - no sessions, resource-group slots, locks, or spill temp files leak.
//
// Run it under -race (CI does): the reader-goroutine/executor handoff and
// shared plan cache get hammered from hundreds of goroutines.
func TestConnectionChurnChaos(t *testing.T) {
	// Spill files land in TMPDIR; give this test its own so the leak check
	// cannot be confused by other tests.
	t.Setenv("TMPDIR", t.TempDir())

	clients := 150
	storm := 2500 * time.Millisecond
	if testing.Short() {
		clients = 48
		storm = 800 * time.Millisecond
	}

	ccfg := cluster.GPDB6(2)
	ccfg.GDDPeriod = 5 * time.Millisecond
	e := core.NewEngine(ccfg)
	defer e.Close()
	srv := server.New(e, server.Config{MaxConns: clients * 2, UseResourceGroups: true})
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown(context.Background())

	ctx := context.Background()
	w := &workload.TPCB{Branches: 4, AccountsPerBranch: 50}
	loader, err := e.NewSession("")
	if err != nil {
		t.Fatal(err)
	}
	if err := loader.ExecScript(ctx, w.Schema()); err != nil {
		t.Fatal(err)
	}
	if err := w.Load(ctx, coreConn{loader}); err != nil {
		t.Fatal(err)
	}
	loader.Close()

	// Every transaction gets a globally unique id, written into
	// pgbench_history.mtime inside the transaction. The id is the ground
	// truth for the lost/phantom-commit reconciliation below.
	var txnID atomic.Int64
	var mu sync.Mutex
	acked := make(map[int64]bool)     // COMMIT acknowledged
	ambiguous := make(map[int64]bool) // COMMIT sent, response lost
	deltas := make(map[int64]int64)   // id → account delta, for atomicity check

	deadline := time.Now().Add(storm)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			r := workload.NewRand(uint64(seed)*2654435761 + 1)
			for time.Now().Before(deadline) {
				c, err := client.DialTimeout(srv.Addr(), "", 5*time.Second)
				if err != nil {
					continue // refused during a capacity blip; try again
				}
				// The killer: after a random fuse, drop the socket with no
				// goodbye — possibly mid-statement or mid-commit.
				var timer *time.Timer
				if r.Range(0, 2) > 0 { // 2/3 of connections die violently
					fuse := time.Duration(r.Range(0, 30)) * time.Millisecond
					timer = time.AfterFunc(fuse, func() { _ = c.Kill() })
				}
				runTxns(ctx, t, c, w, r, deadline, &txnID, &mu, acked, ambiguous, deltas)
				if timer != nil {
					timer.Stop()
				}
				_ = c.Close()
			}
		}(i)
	}
	wg.Wait()

	// Quiesce: every session torn down, every slot back, every lock free.
	waitFor(t, "sessions drained", func() bool { return srv.SessionCount() == 0 })
	for _, grp := range []string{"admin_group", "default_group"} {
		g, ok := e.Cluster().Groups().Group(grp)
		if !ok {
			t.Fatalf("group %s missing", grp)
		}
		waitFor(t, grp+" slots released", func() bool { return g.InUse() == 0 })
	}
	waitFor(t, "coordinator locks released", func() bool {
		return len(e.Cluster().CoordinatorLocks().Dump()) == 0
	})
	for _, seg := range e.Cluster().Segments() {
		seg := seg
		waitFor(t, fmt.Sprintf("segment %d locks released", seg.ID()), func() bool {
			return len(seg.Locks().Dump()) == 0
		})
	}
	if m, _ := filepath.Glob(filepath.Join(os.TempDir(), "gpspill-*")); len(m) != 0 {
		t.Errorf("spill temp dirs leaked after churn: %v", m)
	}

	// Reconcile the ledger through a fresh connection.
	c := dialT(t, srv)
	defer c.Close()
	res := mustExecNet(t, c, "SELECT mtime, delta FROM pgbench_history")
	inDB := make(map[int64]int64, len(res.Rows))
	for _, row := range res.Rows {
		id := row[0].Int()
		if _, dup := inDB[id]; dup {
			t.Fatalf("txn id %d appears twice in history — partial commit", id)
		}
		inDB[id] = row[1].Int()
	}
	committedSum := int64(0)
	for id, delta := range inDB {
		committedSum += delta
		if !acked[id] && !ambiguous[id] {
			t.Errorf("phantom commit: txn %d in history but never acknowledged", id)
		}
		if want := deltas[id]; delta != want {
			t.Errorf("txn %d: history delta %d, issued %d", id, delta, want)
		}
	}
	for id := range acked {
		if _, ok := inDB[id]; !ok {
			t.Errorf("lost commit: txn %d acknowledged but missing from history", id)
		}
	}
	// Atomicity across tables: the account balances must equal exactly the
	// sum of committed deltas — a torn transaction would break this.
	bal := mustExecNet(t, c, "SELECT sum(abalance) FROM pgbench_accounts")
	got := int64(0)
	if !bal.Rows[0][0].IsNull() {
		got = bal.Rows[0][0].Int()
	}
	if got != committedSum {
		t.Errorf("atomicity broken: sum(abalance)=%d, committed deltas=%d", got, committedSum)
	}
	if len(acked) == 0 {
		t.Error("no transaction survived the storm — chaos too violent to test anything")
	}
	t.Logf("churn: %d acked, %d ambiguous, %d committed rows, %d total ids issued",
		len(acked), len(ambiguous), len(inDB), txnID.Load())
}

// runTxns drives TPC-B-style transactions on one connection until the
// connection dies or the deadline passes, recording each commit's fate.
func runTxns(ctx context.Context, t *testing.T, c *client.Client, w *workload.TPCB,
	r *workload.Rand, deadline time.Time, txnID *atomic.Int64,
	mu *sync.Mutex, acked, ambiguous map[int64]bool, deltas map[int64]int64) {
	for time.Now().Before(deadline) {
		id := txnID.Add(1)
		aid := r.Range(1, w.Accounts())
		bid := r.Range(1, w.Branches)
		tid := r.Range(1, w.Branches*10)
		delta := int64(r.Range(-5000, 5000))
		mu.Lock()
		deltas[id] = delta
		mu.Unlock()

		steps := []struct {
			sql  string
			args []types.Datum
		}{
			{"BEGIN", nil},
			{"UPDATE pgbench_accounts SET abalance = abalance + $1 WHERE aid = $2",
				[]types.Datum{types.NewInt(delta), types.NewInt(int64(aid))}},
			{"UPDATE pgbench_branches SET bbalance = bbalance + $1 WHERE bid = $2",
				[]types.Datum{types.NewInt(delta), types.NewInt(int64(bid))}},
			{"INSERT INTO pgbench_history VALUES ($1, $2, $3, $4, $5, '')",
				[]types.Datum{types.NewInt(int64(tid)), types.NewInt(int64(bid)),
					types.NewInt(int64(aid)), types.NewInt(delta), types.NewInt(id)}},
		}
		failed := false
		for _, st := range steps {
			if _, err := c.Exec(ctx, st.sql, st.args...); err != nil {
				if _, ok := err.(*client.ServerError); ok {
					// Server-reported failure (deadlock victim, timeout):
					// the transaction is aborted; roll back and move on.
					_, _ = c.Exec(ctx, "ROLLBACK")
					failed = true
					break
				}
				// Transport death before COMMIT: definitively not committed.
				return
			}
		}
		if failed {
			continue
		}
		if _, err := c.Exec(ctx, "COMMIT"); err != nil {
			if _, ok := err.(*client.ServerError); ok {
				// The server refused the commit; it did not apply. Recorded
				// as ambiguous anyway (cheap safety — a refused commit that
				// somehow applied would still be caught as phantom only if
				// unrecorded).
				mu.Lock()
				ambiguous[id] = true
				mu.Unlock()
				continue
			}
			// Socket died with COMMIT in flight — the one genuinely
			// ambiguous window in the protocol.
			mu.Lock()
			ambiguous[id] = true
			mu.Unlock()
			return
		}
		mu.Lock()
		acked[id] = true
		mu.Unlock()
	}
}

func waitFor(t *testing.T, what string, ok func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !ok() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// coreConn adapts a core.Session to workload.Conn for loading.
type coreConn struct{ s *core.Session }

func (c coreConn) Exec(ctx context.Context, sqlText string, args ...types.Datum) (int, []types.Row, error) {
	res, err := c.s.Exec(ctx, sqlText, args...)
	if err != nil {
		return 0, nil, err
	}
	return res.RowsAffected, res.Rows, nil
}
