package greenplum

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
)

// loadJoinOrderSchema builds the join-order stress schema: two 10k-row fact
// tables sharing a 100-NDV join key (their pairwise join explodes to ~1M
// rows) and a 100-row dimension whose selective filter collapses one fact to
// a few percent. The syntactic order joins the facts first; the cost-based
// optimizer joins through the dimension.
func loadJoinOrderSchema(b *testing.B, s *core.Session) {
	b.Helper()
	ctx := context.Background()
	exec := func(q string) {
		if _, err := s.Exec(ctx, q); err != nil {
			b.Fatalf("%s: %v", q, err)
		}
	}
	exec("CREATE TABLE big1 (a int, j int) DISTRIBUTED BY (a)")
	exec("CREATE TABLE big2 (id int, j int, s int) DISTRIBUTED BY (id)")
	exec("CREATE TABLE small (id int, tag int) DISTRIBUTED BY (tag)")
	load := func(table string, n int, mk func(i int) string) {
		for off := 0; off < n; off += 1000 {
			var sb strings.Builder
			sb.WriteString("INSERT INTO " + table + " VALUES ")
			for i := off; i < off+1000 && i < n; i++ {
				if i > off {
					sb.WriteByte(',')
				}
				sb.WriteString(mk(i))
			}
			exec(sb.String())
		}
	}
	load("big1", 10000, func(i int) string { return fmt.Sprintf("(%d,%d)", i, i%100) })
	load("big2", 10000, func(i int) string { return fmt.Sprintf("(%d,%d,%d)", i, i%100, i%100) })
	load("small", 100, func(i int) string { return fmt.Sprintf("(%d,%d)", i, i%13) })
}

// BenchmarkCostBasedJoinOrder measures the tentpole win: the same three-way
// join executed with the cost-based optimizer off (syntactic left-deep
// order, ~1M-row intermediate) and on (ANALYZE statistics + DP join
// reordering join through the filtered dimension first). The benchmark
// fails if the cost-based plan is not at least 3x faster.
func BenchmarkCostBasedJoinOrder(b *testing.B) {
	const q = "SELECT count(*) FROM big1 JOIN big2 ON big1.j = big2.j JOIN small ON big2.s = small.id WHERE small.id < 3"
	ctx := context.Background()

	e := core.NewEngine(cluster.GPDB6(2))
	defer e.Close()
	s, err := e.NewSession("")
	if err != nil {
		b.Fatal(err)
	}
	loadJoinOrderSchema(b, s)
	if _, err := s.Exec(ctx, "SET optimizer = orca"); err != nil {
		b.Fatal(err)
	}
	if _, err := s.Exec(ctx, "ANALYZE"); err != nil {
		b.Fatal(err)
	}

	run := func(costopt string) (time.Duration, int64) {
		if _, err := s.Exec(ctx, "SET enable_costopt = "+costopt); err != nil {
			b.Fatal(err)
		}
		start := time.Now()
		res, err := s.Exec(ctx, q)
		if err != nil {
			b.Fatal(err)
		}
		return time.Since(start), res.Rows[0][0].Int()
	}

	var syntactic, costBased time.Duration
	for i := 0; i < b.N; i++ {
		ds, ns := run("off")
		dc, nc := run("on")
		if ns != nc {
			b.Fatalf("plans disagree: syntactic=%d cost-based=%d rows", ns, nc)
		}
		syntactic += ds
		costBased += dc
	}
	ratio := float64(syntactic) / float64(costBased)
	b.ReportMetric(ratio, "speedup")
	b.Logf("syntactic=%v cost-based=%v speedup=%.1fx", syntactic/time.Duration(b.N), costBased/time.Duration(b.N), ratio)
	if ratio < 3 {
		b.Fatalf("cost-based join order only %.2fx faster than syntactic (want >= 3x)", ratio)
	}
}
