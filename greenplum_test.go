package greenplum

import (
	"context"
	"testing"
	"time"

	"repro/internal/sql"
)

// parseForBench exposes parsing to the benchmark without importing
// internal/sql there directly.
func parseForBench(q string) (any, error) { return sql.Parse(q) }

func openTest(t *testing.T, opts Options) (*DB, *Conn) {
	t.Helper()
	db, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(db.Close)
	conn, err := db.Connect("")
	if err != nil {
		t.Fatal(err)
	}
	return db, conn
}

func TestPublicAPIQuickstart(t *testing.T) {
	db, conn := openTest(t, Options{Segments: 4})
	ctx := context.Background()

	steps := []string{
		`CREATE TABLE t (a int, b text) DISTRIBUTED BY (a)`,
		`INSERT INTO t VALUES (1, 'one'), (2, 'two'), (3, 'three')`,
	}
	for _, q := range steps {
		if _, err := conn.Exec(ctx, q); err != nil {
			t.Fatalf("%s: %v", q, err)
		}
	}
	res, err := conn.Query(ctx, `SELECT a, b FROM t WHERE a >= $1 ORDER BY a`, Int(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || res.Rows[0][1].Text() != "two" {
		t.Fatalf("rows: %v", res.Rows)
	}
	if res.Columns[0] != "a" || res.Columns[1] != "b" {
		t.Fatalf("columns: %v", res.Columns)
	}

	v, err := conn.QueryScalar(ctx, `SELECT count(*) FROM t`)
	if err != nil || v.Int() != 3 {
		t.Fatalf("scalar: %v %v", v, err)
	}

	if err := conn.Begin(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Exec(ctx, `DELETE FROM t WHERE a = 1`); err != nil {
		t.Fatal(err)
	}
	if err := conn.Rollback(ctx); err != nil {
		t.Fatal(err)
	}
	v, _ = conn.QueryScalar(ctx, `SELECT count(*) FROM t`)
	if v.Int() != 3 {
		t.Fatalf("rollback lost rows: %v", v)
	}

	st := db.Stats()
	if st.ReadOnlyCommits == 0 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestPublicAPIModes(t *testing.T) {
	db5, _ := openTest(t, Options{Segments: 2, Mode: ModeGPDB5})
	db6, _ := openTest(t, Options{Segments: 2, Mode: ModeGPDB6})
	if db5.Engine().Cluster().Config().GDD {
		t.Fatal("GPDB5 preset must disable GDD")
	}
	if !db6.Engine().Cluster().Config().GDD {
		t.Fatal("GPDB6 preset must enable GDD")
	}
}

func TestPublicAPIResourceGroups(t *testing.T) {
	_, conn := openTest(t, Options{Segments: 2, Cores: 4})
	ctx := context.Background()
	script := `
CREATE RESOURCE GROUP olap_group WITH (CONCURRENCY=10, MEMORY_LIMIT=35, MEMORY_SHARED_QUOTA=20, CPU_RATE_LIMIT=20);
CREATE RESOURCE GROUP oltp_group WITH (CONCURRENCY=50, MEMORY_LIMIT=15, MEMORY_SHARED_QUOTA=20, CPU_RATE_LIMIT=60);
CREATE ROLE dev1 RESOURCE GROUP olap_group;
ALTER ROLE dev1 RESOURCE GROUP oltp_group;
`
	if err := conn.ExecScript(ctx, script); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPIExplainAndOptimizer(t *testing.T) {
	_, conn := openTest(t, Options{Segments: 2})
	ctx := context.Background()
	if _, err := conn.Exec(ctx, `CREATE TABLE t (a int, b int) DISTRIBUTED BY (a)`); err != nil {
		t.Fatal(err)
	}
	if err := conn.SetOptimizer("orca"); err != nil {
		t.Fatal(err)
	}
	res, err := conn.Query(ctx, `EXPLAIN SELECT * FROM t WHERE b > 1`)
	if err != nil || len(res.Rows) == 0 {
		t.Fatalf("explain: %v %v", res, err)
	}
	if err := conn.SetOptimizer("bogus"); err == nil {
		t.Fatal("bogus optimizer accepted")
	}
}

func TestPublicAPIPolymorphicPartitions(t *testing.T) {
	_, conn := openTest(t, Options{Segments: 3})
	ctx := context.Background()
	// The paper's Figure 5 table: recent partitions heap, older AO-column.
	ddl := `
CREATE TABLE sales (id int, sdate date, amt float)
DISTRIBUTED BY (id)
PARTITION BY RANGE (sdate) (
	PARTITION recent START ('2021-06-01') END ('2021-09-01'),
	PARTITION older  START ('2021-01-01') END ('2021-06-01') WITH (appendonly=true, orientation=column)
)`
	if _, err := conn.Exec(ctx, ddl); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Exec(ctx,
		`INSERT INTO sales VALUES (1, '2021-07-15', 10.5), (2, '2021-02-03', 20.25), (3, '2021-08-01', 5.0)`); err != nil {
		t.Fatal(err)
	}
	v, err := conn.QueryScalar(ctx, `SELECT sum(amt) FROM sales WHERE sdate >= '2021-06-01'`)
	if err != nil {
		t.Fatal(err)
	}
	if v.Float() != 15.5 {
		t.Fatalf("partition-pruned sum = %v", v)
	}
	// Out-of-range insert fails cleanly.
	if _, err := conn.Exec(ctx, `INSERT INTO sales VALUES (4, '2022-01-01', 1.0)`); err == nil {
		t.Fatal("insert outside partitions accepted")
	}
}

func TestPublicAPIDeadlockSurface(t *testing.T) {
	db, admin := openTest(t, Options{Segments: 2, GDDPeriod: 5 * time.Millisecond})
	ctx := context.Background()
	if _, err := admin.Exec(ctx, `CREATE TABLE t (a int, b int) DISTRIBUTED BY (a)`); err != nil {
		t.Fatal(err)
	}
	// Find keys on different segments.
	k := []int{-1, -1}
	for i := 1; i < 1000 && (k[0] < 0 || k[1] < 0); i++ {
		seg := int(Int(int64(i)).Hash() % 2)
		if k[seg] < 0 {
			k[seg] = i
		}
	}
	if _, err := admin.Exec(ctx, `INSERT INTO t VALUES ($1, 0), ($2, 0)`, Int(int64(k[0])), Int(int64(k[1]))); err != nil {
		t.Fatal(err)
	}
	c1, _ := db.Connect("")
	c2, _ := db.Connect("")
	_ = c1.Begin(ctx)
	_ = c2.Begin(ctx)
	if _, err := c1.Exec(ctx, `UPDATE t SET b = 1 WHERE a = $1`, Int(int64(k[0]))); err != nil {
		t.Fatal(err)
	}
	if _, err := c2.Exec(ctx, `UPDATE t SET b = 2 WHERE a = $1`, Int(int64(k[1]))); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 2)
	go func() {
		_, err := c2.Exec(ctx, `UPDATE t SET b = 2 WHERE a = $1`, Int(int64(k[0])))
		done <- err
	}()
	time.Sleep(30 * time.Millisecond)
	go func() {
		_, err := c1.Exec(ctx, `UPDATE t SET b = 1 WHERE a = $1`, Int(int64(k[1])))
		done <- err
	}()
	var failures int
	for i := 0; i < 2; i++ {
		select {
		case err := <-done:
			if err != nil {
				failures++
			}
		case <-time.After(5 * time.Second):
			t.Fatal("deadlock not resolved")
		}
	}
	if failures != 1 {
		t.Fatalf("expected exactly one deadlock victim, got %d failures", failures)
	}
	if db.Stats().DeadlockVictims != 1 {
		t.Fatalf("stats: %+v", db.Stats())
	}
	_ = c1.Rollback(ctx)
	_ = c2.Rollback(ctx)
}
